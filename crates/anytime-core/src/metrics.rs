//! Output-accuracy metrics and monotonicity checking.
//!
//! The paper measures accuracy as the signal-to-noise ratio (SNR) of an
//! approximate output relative to the baseline precise output, in decibels,
//! with ∞ dB meaning bit-identical (§IV-A2). This module provides the slice
//! metrics plus an [`AccuracyTrace`] helper used throughout the test suite
//! to verify the model's headline guarantee: *accuracy increases over time
//! and eventually reaches the precise output*.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Cumulative counters for one event source's blocking waits.
///
/// Every stage output buffer (and the control token) owns one of these;
/// the event-driven wait paths update it so the cost of waiting — and the
/// latency from publication to observation — is measurable per stage.
/// Counters are updated with relaxed atomics: they are diagnostics, not
/// synchronization.
#[derive(Debug, Default)]
pub struct WaitCounters {
    waits: AtomicU64,
    wakeups: AtomicU64,
    spurious_wakeups: AtomicU64,
    wait_ns: AtomicU64,
    observations: AtomicU64,
    publish_to_observe_ns: AtomicU64,
}

impl WaitCounters {
    pub(crate) fn record_wait_entered(&self) {
        self.waits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_wakeup(&self) {
        self.wakeups.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_spurious_wakeup(&self) {
        self.spurious_wakeups.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_wait_finished(&self, blocked: Duration) {
        self.wait_ns
            .fetch_add(blocked.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_observation(&self, publish_to_observe: Duration) {
        self.observations.fetch_add(1, Ordering::Relaxed);
        self.publish_to_observe_ns
            .fetch_add(publish_to_observe.as_nanos() as u64, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> WaitStats {
        WaitStats {
            waits: self.waits.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            spurious_wakeups: self.spurious_wakeups.load(Ordering::Relaxed),
            total_wait: Duration::from_nanos(self.wait_ns.load(Ordering::Relaxed)),
            observations: self.observations.load(Ordering::Relaxed),
            total_publish_to_observe: Duration::from_nanos(
                self.publish_to_observe_ns.load(Ordering::Relaxed),
            ),
        }
    }
}

/// A point-in-time view of a source's [`WaitCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaitStats {
    /// Blocking waits entered (fast-path reads that never blocked are not
    /// counted).
    pub waits: u64,
    /// Times a blocked waiter was woken by a notification.
    pub wakeups: u64,
    /// Wakeups after which the awaited condition still did not hold.
    pub spurious_wakeups: u64,
    /// Total time waiters spent blocked.
    pub total_wait: Duration,
    /// Snapshots observed at the end of a blocking wait.
    pub observations: u64,
    /// Total latency from each snapshot's publication to its observation
    /// by a blocked waiter.
    pub total_publish_to_observe: Duration,
}

impl WaitStats {
    /// Mean time blocked per wait, or zero if nothing ever waited.
    pub fn mean_wait(&self) -> Duration {
        if self.waits == 0 {
            Duration::ZERO
        } else {
            self.total_wait / self.waits as u32
        }
    }

    /// Mean publication-to-observation latency, or zero if no snapshot
    /// was observed from a blocking wait.
    pub fn mean_publish_to_observe(&self) -> Duration {
        if self.observations == 0 {
            Duration::ZERO
        } else {
            self.total_publish_to_observe / self.observations as u32
        }
    }
}

/// Cumulative fault-handling counters for one automaton run.
///
/// Updated by the executor's supervision loop and the watchdog thread as
/// failures are handled; snapshot with [`FaultCounters::snapshot`] (the
/// executor surfaces the snapshot in its end-state report). Relaxed
/// atomics: diagnostics, not synchronization.
#[derive(Debug, Default)]
pub struct FaultCounters {
    restarts: AtomicU64,
    stalls: AtomicU64,
    degradations: AtomicU64,
    permanent_failures: AtomicU64,
}

impl FaultCounters {
    pub(crate) fn record_restart(&self) {
        self.restarts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_stall(&self) {
        self.stalls.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_degradation(&self) {
        self.degradations.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_permanent_failure(&self) {
        self.permanent_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    ///
    /// `dropped_publishes` is aggregated separately (per buffer) and starts
    /// at zero here; the executor fills it in when building its report.
    pub fn snapshot(&self) -> FaultStats {
        FaultStats {
            restarts: self.restarts.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            degradations: self.degradations.load(Ordering::Relaxed),
            permanent_failures: self.permanent_failures.load(Ordering::Relaxed),
            dropped_publishes: 0,
        }
    }
}

/// A point-in-time view of an automaton's [`FaultCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Stage drivers re-run after a panic under
    /// [`crate::FailurePolicy::Restart`].
    pub restarts: u64,
    /// Stalls declared by the progress watchdog (a stage can stall, recover,
    /// and stall again under [`crate::StallAction::Log`]).
    pub stalls: u64,
    /// Buffers sealed degraded — by [`crate::FailurePolicy::Degrade`] on
    /// permanent death or by [`crate::StallAction::Degrade`] on stall.
    pub degradations: u64,
    /// Stage failures that became permanent (fail-stop, exhausted restarts,
    /// or a degrade with nothing published to degrade to).
    pub permanent_failures: u64,
    /// Publications dropped after a degraded seal, summed over all stage
    /// output buffers.
    pub dropped_publishes: u64,
}

impl FaultStats {
    /// `true` if the run completed with no fault handling at all.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

/// Mean squared error between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mse(approx: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(
        approx.len(),
        reference.len(),
        "mse requires equal-length slices"
    );
    assert!(!reference.is_empty(), "mse of empty slices is undefined");
    let sum: f64 = approx
        .iter()
        .zip(reference)
        .map(|(a, r)| (a - r) * (a - r))
        .sum();
    sum / reference.len() as f64
}

/// Signal-to-noise ratio of `approx` relative to `reference`, in decibels.
///
/// `SNR = 10·log10(Σ r² / Σ (r − a)²)`. Returns [`f64::INFINITY`] when the
/// outputs are identical (the paper's ∞ dB precise point).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn snr_db(approx: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(
        approx.len(),
        reference.len(),
        "snr requires equal-length slices"
    );
    assert!(!reference.is_empty(), "snr of empty slices is undefined");
    let signal: f64 = reference.iter().map(|r| r * r).sum();
    let noise: f64 = approx
        .iter()
        .zip(reference)
        .map(|(a, r)| (a - r) * (a - r))
        .sum();
    if noise == 0.0 {
        f64::INFINITY
    } else if signal == 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * (signal / noise).log10()
    }
}

/// Peak signal-to-noise ratio in decibels, for signals with a known peak
/// value (e.g. 255 for 8-bit images).
///
/// Returns [`f64::INFINITY`] when the outputs are identical.
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or `peak <= 0`.
pub fn psnr_db(approx: &[f64], reference: &[f64], peak: f64) -> f64 {
    assert!(peak > 0.0, "peak must be positive");
    let m = mse(approx, reference);
    if m == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (peak * peak / m).log10()
    }
}

/// A metric scoring an approximate value against a precise reference.
///
/// Higher scores mean better accuracy. Implemented for the slice metrics
/// here; application crates implement it for their own output types
/// (e.g. images).
pub trait QualityMetric<T: ?Sized> {
    /// Scores `approx` against `reference`; higher is more accurate.
    fn score(&self, approx: &T, reference: &T) -> f64;
}

/// [`QualityMetric`] adapter for [`snr_db`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnrDb;

impl QualityMetric<[f64]> for SnrDb {
    fn score(&self, approx: &[f64], reference: &[f64]) -> f64 {
        snr_db(approx, reference)
    }
}

impl QualityMetric<Vec<f64>> for SnrDb {
    fn score(&self, approx: &Vec<f64>, reference: &Vec<f64>) -> f64 {
        snr_db(approx, reference)
    }
}

/// [`QualityMetric`] adapter for negated [`mse`] (higher is better).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NegMse;

impl QualityMetric<[f64]> for NegMse {
    fn score(&self, approx: &[f64], reference: &[f64]) -> f64 {
        -mse(approx, reference)
    }
}

impl QualityMetric<Vec<f64>> for NegMse {
    fn score(&self, approx: &Vec<f64>, reference: &Vec<f64>) -> f64 {
        -mse(approx, reference)
    }
}

/// A recorded runtime–accuracy profile: the data behind the paper's
/// Figures 11–15.
#[derive(Debug, Clone, Default)]
pub struct AccuracyTrace {
    points: Vec<(Duration, f64)>,
}

impl AccuracyTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an observation.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the previous observation.
    pub fn push(&mut self, at: Duration, score: f64) {
        if let Some(&(prev, _)) = self.points.last() {
            assert!(at >= prev, "observations must be in time order");
        }
        self.points.push((at, score));
    }

    /// The recorded `(time, score)` points, oldest first.
    pub fn points(&self) -> &[(Duration, f64)] {
        &self.points
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last recorded score, if any.
    pub fn final_score(&self) -> Option<f64> {
        self.points.last().map(|&(_, s)| s)
    }

    /// Checks the anytime guarantee: scores never *decrease* by more than
    /// `tolerance` between consecutive observations.
    ///
    /// A small tolerance absorbs metric noise (e.g. a weighted-sample
    /// estimate that wobbles before converging); `0.0` demands strict
    /// non-decrease.
    pub fn is_monotone_nondecreasing(&self, tolerance: f64) -> bool {
        self.points.windows(2).all(|w| w[1].1 >= w[0].1 - tolerance)
    }

    /// The earliest time at which the score reached `threshold`, if ever.
    pub fn time_to_score(&self, threshold: f64) -> Option<Duration> {
        self.points
            .iter()
            .find(|&&(_, s)| s >= threshold)
            .map(|&(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_basics() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(mse(&[0.0, 0.0], &[3.0, 4.0]), 12.5);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mse_length_mismatch_panics() {
        mse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn mse_empty_panics() {
        mse(&[], &[]);
    }

    #[test]
    fn snr_identical_is_infinite() {
        assert_eq!(snr_db(&[5.0, 5.0], &[5.0, 5.0]), f64::INFINITY);
    }

    #[test]
    fn snr_known_value() {
        // signal = 100, noise = 1 -> 20 dB.
        let got = snr_db(&[9.0, 0.0], &[10.0, 0.0]);
        assert!((got - 20.0).abs() < 1e-9, "got {got}");
    }

    #[test]
    fn snr_zero_signal() {
        assert_eq!(snr_db(&[1.0], &[0.0]), f64::NEG_INFINITY);
    }

    #[test]
    fn snr_improves_as_output_converges() {
        let reference = [4.0, 8.0, 15.0, 16.0, 23.0, 42.0];
        let mut approx = [0.0; 6];
        let mut last = f64::NEG_INFINITY;
        for i in 0..6 {
            approx[i] = reference[i];
            let s = snr_db(&approx, &reference);
            assert!(s >= last);
            last = s;
        }
        assert_eq!(last, f64::INFINITY);
    }

    #[test]
    fn psnr_known_value() {
        // MSE 1 with peak 255 -> 10*log10(65025) ≈ 48.13 dB.
        let got = psnr_db(&[1.0, 2.0], &[2.0, 3.0], 255.0);
        assert!((got - 48.1308).abs() < 1e-3, "got {got}");
        assert_eq!(psnr_db(&[1.0], &[1.0], 255.0), f64::INFINITY);
    }

    #[test]
    fn quality_metric_trait_objects() {
        let snr: &dyn QualityMetric<[f64]> = &SnrDb;
        assert_eq!(snr.score(&[1.0], &[1.0]), f64::INFINITY);
        let neg: &dyn QualityMetric<[f64]> = &NegMse;
        assert_eq!(neg.score(&[0.0], &[2.0]), -4.0);
    }

    #[test]
    fn trace_monotonicity() {
        let mut t = AccuracyTrace::new();
        assert!(t.is_empty());
        t.push(Duration::from_millis(1), 1.0);
        t.push(Duration::from_millis(2), 2.0);
        t.push(Duration::from_millis(3), 1.95);
        assert_eq!(t.len(), 3);
        assert!(!t.is_monotone_nondecreasing(0.0));
        assert!(t.is_monotone_nondecreasing(0.1));
        assert_eq!(t.final_score(), Some(1.95));
        assert_eq!(t.time_to_score(2.0), Some(Duration::from_millis(2)));
        assert_eq!(t.time_to_score(99.0), None);
    }

    #[test]
    fn fault_counters_snapshot() {
        let c = FaultCounters::default();
        assert!(c.snapshot().is_clean());
        c.record_restart();
        c.record_restart();
        c.record_stall();
        c.record_degradation();
        c.record_permanent_failure();
        let s = c.snapshot();
        assert_eq!(s.restarts, 2);
        assert_eq!(s.stalls, 1);
        assert_eq!(s.degradations, 1);
        assert_eq!(s.permanent_failures, 1);
        assert_eq!(s.dropped_publishes, 0);
        assert!(!s.is_clean());
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn trace_rejects_time_travel() {
        let mut t = AccuracyTrace::new();
        t.push(Duration::from_millis(5), 1.0);
        t.push(Duration::from_millis(1), 2.0);
    }
}
