//! Output-accuracy metrics and monotonicity checking.
//!
//! The paper measures accuracy as the signal-to-noise ratio (SNR) of an
//! approximate output relative to the baseline precise output, in decibels,
//! with ∞ dB meaning bit-identical (§IV-A2). This module provides the slice
//! metrics plus an [`AccuracyTrace`] helper used throughout the test suite
//! to verify the model's headline guarantee: *accuracy increases over time
//! and eventually reaches the precise output*.

use crate::notify::Watchers;
use crate::observe::{write_sample, write_type, MetricSet, MetricStats, Observe};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Cumulative counters for one event source's blocking waits.
///
/// Every stage output buffer (and the control token) owns one of these;
/// the event-driven wait paths update it so the cost of waiting — and the
/// latency from publication to observation — is measurable per stage.
/// Counters are updated with relaxed atomics: they are diagnostics, not
/// synchronization.
#[derive(Debug, Default)]
pub struct WaitCounters {
    waits: AtomicU64,
    wakeups: AtomicU64,
    spurious_wakeups: AtomicU64,
    wait_ns: AtomicU64,
    observations: AtomicU64,
    publish_to_observe_ns: AtomicU64,
    /// Woken whenever `waits` advances, so tests can block until another
    /// thread has *entered* a blocking wait instead of sleeping a guessed
    /// quantum (see [`Self::wait_for_waits`]). Empty outside tests — a
    /// wake of an empty registry is one uncontended lock.
    entered: Watchers,
}

impl WaitCounters {
    pub(crate) fn record_wait_entered(&self) {
        self.waits.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
        self.entered.wake_all();
    }

    pub(crate) fn record_wakeup(&self) {
        self.wakeups.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_spurious_wakeup(&self) {
        self.spurious_wakeups.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_wait_finished(&self, blocked: Duration) {
        self.wait_ns
            .fetch_add(blocked.as_nanos() as u64, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_observation(&self, publish_to_observe: Duration) {
        self.observations.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
        self.publish_to_observe_ns
            // relaxed: diagnostics counter, not synchronization
            .fetch_add(publish_to_observe.as_nanos() as u64, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> WaitStats {
        WaitStats {
            // relaxed: point-in-time diagnostic snapshot; readers tolerate skew
            waits: self.waits.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            spurious_wakeups: self.spurious_wakeups.load(Ordering::Relaxed),
            total_wait: Duration::from_nanos(self.wait_ns.load(Ordering::Relaxed)),
            observations: self.observations.load(Ordering::Relaxed),
            total_publish_to_observe: Duration::from_nanos(
                self.publish_to_observe_ns.load(Ordering::Relaxed), // relaxed: snapshot read; skew tolerated
            ),
        }
    }

    /// Test-only synchronization: blocks until at least `target` blocking
    /// waits have been entered on this source, or `timeout` passes.
    /// Returns `true` once the target is reached. Event-driven (epoch
    /// protocol against the `entered` watchers) — the replacement for
    /// `thread::sleep`-and-hope in tests that need a peer thread to reach
    /// its blocking wait first.
    #[cfg(test)]
    pub(crate) fn wait_for_waits(&self, target: u64, timeout: Duration) -> bool {
        let ws = crate::notify::WaitSet::new();
        let _watch = self.entered.subscribe(&ws);
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let seen = ws.epoch();
            // relaxed: the WaitSet epoch mutex orders the bump before this read
            if self.waits.load(Ordering::Relaxed) >= target {
                return true;
            }
            if !ws.wait_deadline(seen, deadline) {
                return false;
            }
        }
    }
}

/// A point-in-time view of a source's [`WaitCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaitStats {
    /// Blocking waits entered (fast-path reads that never blocked are not
    /// counted).
    pub waits: u64,
    /// Times a blocked waiter was woken by a notification.
    pub wakeups: u64,
    /// Wakeups after which the awaited condition still did not hold.
    pub spurious_wakeups: u64,
    /// Total time waiters spent blocked.
    pub total_wait: Duration,
    /// Snapshots observed at the end of a blocking wait.
    pub observations: u64,
    /// Total latency from each snapshot's publication to its observation
    /// by a blocked waiter.
    pub total_publish_to_observe: Duration,
}

impl Observe for WaitCounters {
    fn name(&self) -> &str {
        "wait"
    }

    fn render(&self, out: &mut dyn fmt::Write) -> fmt::Result {
        render_wait_stats(out, &self.snapshot(), &[])
    }
}

impl MetricSet for WaitCounters {
    type Stats = WaitStats;

    fn snapshot(&self) -> WaitStats {
        WaitCounters::snapshot(self)
    }
}

/// Writes one [`WaitStats`] in the Prometheus text format, optionally
/// labeled (the per-stage renderings in [`crate::RunReport`] label by
/// stage; a bare [`WaitCounters`] renders unlabeled).
pub(crate) fn render_wait_stats(
    out: &mut dyn fmt::Write,
    s: &WaitStats,
    labels: &[(&str, &str)],
) -> fmt::Result {
    write_type(out, "anytime_wait_waits_total", "counter")?;
    write_sample(out, "anytime_wait_waits_total", labels, s.waits as f64)?;
    write_type(out, "anytime_wait_wakeups_total", "counter")?;
    write_sample(out, "anytime_wait_wakeups_total", labels, s.wakeups as f64)?;
    write_type(out, "anytime_wait_spurious_wakeups_total", "counter")?;
    write_sample(
        out,
        "anytime_wait_spurious_wakeups_total",
        labels,
        s.spurious_wakeups as f64,
    )?;
    write_type(out, "anytime_wait_blocked_seconds_total", "counter")?;
    write_sample(
        out,
        "anytime_wait_blocked_seconds_total",
        labels,
        s.total_wait.as_secs_f64(),
    )?;
    write_type(out, "anytime_wait_observations_total", "counter")?;
    write_sample(
        out,
        "anytime_wait_observations_total",
        labels,
        s.observations as f64,
    )?;
    write_type(
        out,
        "anytime_wait_publish_to_observe_seconds_total",
        "counter",
    )?;
    write_sample(
        out,
        "anytime_wait_publish_to_observe_seconds_total",
        labels,
        s.total_publish_to_observe.as_secs_f64(),
    )
}

impl MetricStats for WaitStats {
    fn absorb(&mut self, other: &Self) {
        self.waits += other.waits;
        self.wakeups += other.wakeups;
        self.spurious_wakeups += other.spurious_wakeups;
        self.total_wait += other.total_wait;
        self.observations += other.observations;
        self.total_publish_to_observe += other.total_publish_to_observe;
    }

    fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

/// Cumulative fault-handling counters for one automaton run.
///
/// Updated by the executor's supervision loop and the watchdog thread as
/// failures are handled; snapshot with [`FaultCounters::snapshot`] (the
/// executor surfaces the snapshot in its end-state report). Relaxed
/// atomics: diagnostics, not synchronization.
#[derive(Debug, Default)]
pub struct FaultCounters {
    restarts: AtomicU64,
    stalls: AtomicU64,
    degradations: AtomicU64,
    permanent_failures: AtomicU64,
}

impl FaultCounters {
    pub(crate) fn record_restart(&self) {
        self.restarts.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_stall(&self) {
        self.stalls.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_degradation(&self) {
        self.degradations.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_permanent_failure(&self) {
        self.permanent_failures.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    /// A point-in-time copy of the counters.
    ///
    /// `dropped_publishes` is aggregated separately (per buffer) and starts
    /// at zero here; the executor fills it in when building its report.
    pub fn snapshot(&self) -> FaultStats {
        FaultStats {
            // relaxed: point-in-time diagnostic snapshot; readers tolerate skew
            restarts: self.restarts.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            degradations: self.degradations.load(Ordering::Relaxed),
            permanent_failures: self.permanent_failures.load(Ordering::Relaxed),
            dropped_publishes: 0,
        }
    }
}

/// A point-in-time view of an automaton's [`FaultCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Stage drivers re-run after a panic under
    /// [`crate::FailurePolicy::Restart`].
    pub restarts: u64,
    /// Stalls declared by the progress watchdog (a stage can stall, recover,
    /// and stall again under [`crate::StallAction::Log`]).
    pub stalls: u64,
    /// Buffers sealed degraded — by [`crate::FailurePolicy::Degrade`] on
    /// permanent death or by [`crate::StallAction::Degrade`] on stall.
    pub degradations: u64,
    /// Stage failures that became permanent (fail-stop, exhausted restarts,
    /// or a degrade with nothing published to degrade to).
    pub permanent_failures: u64,
    /// Publications dropped after a degraded seal, summed over all stage
    /// output buffers.
    pub dropped_publishes: u64,
}

impl FaultStats {
    /// `true` if the run completed with no fault handling at all.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }

    /// Accumulates another run's fault handling into this total.
    ///
    /// Used by the serving layer to aggregate the `FaultStats` of every
    /// pipeline run a [`crate::serve::ServePool`] performed.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.restarts += other.restarts;
        self.stalls += other.stalls;
        self.degradations += other.degradations;
        self.permanent_failures += other.permanent_failures;
        self.dropped_publishes += other.dropped_publishes;
    }
}

impl Observe for FaultCounters {
    fn name(&self) -> &str {
        "faults"
    }

    fn render(&self, out: &mut dyn fmt::Write) -> fmt::Result {
        render_fault_stats(out, &self.snapshot(), &[])
    }
}

impl MetricSet for FaultCounters {
    type Stats = FaultStats;

    fn snapshot(&self) -> FaultStats {
        FaultCounters::snapshot(self)
    }
}

/// Writes one [`FaultStats`] in the Prometheus text format.
pub(crate) fn render_fault_stats(
    out: &mut dyn fmt::Write,
    s: &FaultStats,
    labels: &[(&str, &str)],
) -> fmt::Result {
    write_type(out, "anytime_faults_total", "counter")?;
    for (kind, value) in [
        ("restarts", s.restarts),
        ("stalls", s.stalls),
        ("degradations", s.degradations),
        ("permanent_failures", s.permanent_failures),
        ("dropped_publishes", s.dropped_publishes),
    ] {
        let mut labeled: Vec<(&str, &str)> = labels.to_vec();
        labeled.push(("kind", kind));
        write_sample(out, "anytime_faults_total", &labeled, value as f64)?;
    }
    Ok(())
}

impl MetricStats for FaultStats {
    fn absorb(&mut self, other: &Self) {
        FaultStats::absorb(self, other);
    }

    fn is_clean(&self) -> bool {
        FaultStats::is_clean(self)
    }
}

/// An exponentially weighted moving average of a latency, updatable from
/// any thread.
///
/// The serving layer keeps one per replica: every completed request feeds
/// its service time in, and admission control reads the smoothed value to
/// project queue wait. Stored as nanoseconds in a single atomic (the
/// read-modify-write race between two concurrent `record`s merely drops
/// one sample — acceptable for a smoothed estimator).
#[derive(Debug, Default)]
pub struct LatencyEwma {
    /// Smoothed latency in nanoseconds; 0 means "no sample yet".
    nanos: AtomicU64,
}

impl LatencyEwma {
    /// Smoothing factor: each new sample contributes 1/4 of the estimate.
    const WEIGHT_SHIFT: u32 = 2;

    /// Folds a new sample into the average.
    pub fn record(&self, sample: Duration) {
        let s = sample.as_nanos().min(u64::MAX as u128) as u64;
        let prev = self.nanos.load(Ordering::Relaxed); // relaxed: lossy smoothed estimator (see type doc)
        let next = if prev == 0 {
            s.max(1)
        } else {
            (prev - (prev >> Self::WEIGHT_SHIFT) + (s >> Self::WEIGHT_SHIFT)).max(1)
        };
        self.nanos.store(next, Ordering::Relaxed); // relaxed: lossy smoothed estimator (see type doc)
    }

    /// The smoothed latency, or `None` before the first sample.
    pub fn get(&self) -> Option<Duration> {
        // relaxed: smoothed estimate read; staleness tolerated
        match self.nanos.load(Ordering::Relaxed) {
            0 => None,
            n => Some(Duration::from_nanos(n)),
        }
    }
}

/// A lock-free log₂-bucketed latency histogram with quantile estimation.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` microseconds (bucket 0
/// also absorbs sub-microsecond samples; the last bucket absorbs
/// everything ≥ ~67 s). The serving layer uses the P95 of observed service
/// latencies as its hedging trigger.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; Self::BUCKETS],
    count: AtomicU64,
}

impl LatencyHistogram {
    const BUCKETS: usize = 27;

    /// Records one latency sample.
    pub fn record(&self, sample: Duration) {
        let us = sample.as_micros().min(u64::MAX as u128) as u64;
        let idx = (63 - us.max(1).leading_zeros() as usize).min(Self::BUCKETS - 1);
        // relaxed: diagnostics counters; count/bucket skew tolerated
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed) // relaxed: diagnostic count read; skew tolerated
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> LatencyStats {
        let mut buckets = [0u64; Self::BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed); // relaxed: bucket snapshot; cross-bucket skew tolerated
        }
        LatencyStats {
            buckets,
            count: self.count(),
        }
    }

    /// An estimate of quantile `q` (clamped to `[0, 1]`), or `None` before
    /// the first sample.
    ///
    /// Interpolates linearly *within* the bucket containing the quantile
    /// rank. Earlier revisions returned a bucket edge outright, which on
    /// sparse data snapped P95 hedge triggers a whole power of two away
    /// from the observed latencies; interpolation keeps the estimate
    /// inside the bucket, proportional to where the rank falls in it.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        self.snapshot().quantile(q)
    }
}

impl Observe for LatencyHistogram {
    fn name(&self) -> &str {
        "latency"
    }

    fn render(&self, out: &mut dyn fmt::Write) -> fmt::Result {
        self.snapshot()
            .render_as(out, "anytime_latency_seconds", &[])
    }
}

impl MetricSet for LatencyHistogram {
    type Stats = LatencyStats;

    fn snapshot(&self) -> LatencyStats {
        LatencyHistogram::snapshot(self)
    }
}

/// A point-in-time view of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Sample counts per log₂ bucket: bucket `i` spans
    /// `[2^i, 2^(i+1))` microseconds.
    pub buckets: [u64; 27],
    /// Total samples recorded.
    pub count: u64,
}

impl LatencyStats {
    /// An estimate of quantile `q` (clamped to `[0, 1]`), interpolated
    /// linearly within the bucket containing the quantile rank; `None`
    /// before the first sample. See [`LatencyHistogram::quantile`].
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.count == 0 {
            return None;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 && seen + n >= rank {
                let lower = (1u64 << i) as f64;
                let upper = (1u64 << (i + 1)) as f64;
                // Midpoint rule: the k-th of n samples in a bucket sits at
                // fraction (k - 1/2)/n of the bucket's width, so a lone
                // sample estimates the bucket midpoint instead of an edge.
                let pos = (rank - seen) as f64;
                let frac = (pos - 0.5) / n as f64;
                let us = lower + (upper - lower) * frac;
                return Some(Duration::from_secs_f64(us * 1e-6));
            }
            seen += n;
        }
        // Unreachable when count equals the bucket sum; be conservative if
        // a racy snapshot undercounts.
        Some(Duration::from_micros(1u64 << self.buckets.len()))
    }

    /// Writes this histogram in the Prometheus text format under `family`
    /// (`_bucket` cumulative counts with `le` in seconds, plus `_count`).
    pub(crate) fn render_as(
        &self,
        out: &mut dyn fmt::Write,
        family: &str,
        labels: &[(&str, &str)],
    ) -> fmt::Result {
        write_type(out, family, "histogram")?;
        let bucket = format!("{family}_bucket");
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            let le = format!("{}", (1u64 << (i + 1)) as f64 * 1e-6);
            let mut labeled: Vec<(&str, &str)> = labels.to_vec();
            labeled.push(("le", le.as_str()));
            write_sample(out, &bucket, &labeled, cumulative as f64)?;
        }
        let mut labeled: Vec<(&str, &str)> = labels.to_vec();
        labeled.push(("le", "+Inf"));
        write_sample(out, &bucket, &labeled, self.count as f64)?;
        write_sample(out, &format!("{family}_count"), labels, self.count as f64)
    }
}

impl MetricStats for LatencyStats {
    fn absorb(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
    }

    fn is_clean(&self) -> bool {
        self.count == 0
    }
}

/// Histogram of response arrival relative to the request deadline.
///
/// Each sample is the ratio `elapsed / deadline budget`; the fixed bucket
/// edges make "how close to the wire do responses land" legible at a
/// glance, and `hit_rate` is the fraction that arrived by the deadline.
#[derive(Debug, Default)]
pub struct DeadlineHistogram {
    buckets: [AtomicU64; DEADLINE_BUCKET_EDGES.len() + 1],
}

/// Upper edges of the deadline-ratio buckets; a final unbounded bucket
/// catches everything ≥ the last edge (deadline overshoots).
pub const DEADLINE_BUCKET_EDGES: [f64; 6] = [0.25, 0.5, 0.75, 0.9, 1.0, 1.1];

impl DeadlineHistogram {
    /// Records a response that took `elapsed` of a `budget`-sized deadline.
    pub fn record(&self, elapsed: Duration, budget: Duration) {
        let ratio = if budget.is_zero() {
            f64::INFINITY
        } else {
            elapsed.as_secs_f64() / budget.as_secs_f64()
        };
        let idx = DEADLINE_BUCKET_EDGES
            .iter()
            .position(|&edge| ratio < edge)
            .unwrap_or(DEADLINE_BUCKET_EDGES.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> DeadlineHistogramStats {
        let mut buckets = [0u64; DEADLINE_BUCKET_EDGES.len() + 1];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed); // relaxed: bucket snapshot; cross-bucket skew tolerated
        }
        DeadlineHistogramStats { buckets }
    }
}

/// A point-in-time view of a [`DeadlineHistogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeadlineHistogramStats {
    /// Response counts per deadline-ratio bucket: one bucket per edge in
    /// [`DEADLINE_BUCKET_EDGES`] plus a final unbounded overshoot bucket.
    pub buckets: [u64; DEADLINE_BUCKET_EDGES.len() + 1],
}

impl Observe for DeadlineHistogram {
    fn name(&self) -> &str {
        "deadline"
    }

    fn render(&self, out: &mut dyn fmt::Write) -> fmt::Result {
        self.snapshot()
            .render_as(out, "anytime_deadline_ratio", &[])
    }
}

impl MetricSet for DeadlineHistogram {
    type Stats = DeadlineHistogramStats;

    fn snapshot(&self) -> DeadlineHistogramStats {
        DeadlineHistogram::snapshot(self)
    }
}

impl MetricStats for DeadlineHistogramStats {
    fn absorb(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    fn is_clean(&self) -> bool {
        self.count() == 0
    }
}

impl DeadlineHistogramStats {
    /// Total responses recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Writes this histogram in the Prometheus text format under `family`
    /// (`_bucket` cumulative counts with `le` as deadline ratios, plus
    /// `_count`).
    pub(crate) fn render_as(
        &self,
        out: &mut dyn fmt::Write,
        family: &str,
        labels: &[(&str, &str)],
    ) -> fmt::Result {
        write_type(out, family, "histogram")?;
        let bucket = format!("{family}_bucket");
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            let le = DEADLINE_BUCKET_EDGES
                .get(i)
                .map_or("+Inf".to_owned(), |e| format!("{e}"));
            let mut labeled: Vec<(&str, &str)> = labels.to_vec();
            labeled.push(("le", le.as_str()));
            write_sample(out, &bucket, &labeled, cumulative as f64)?;
        }
        write_sample(out, &format!("{family}_count"), labels, self.count() as f64)
    }

    /// Fraction of responses that arrived within 10% of their deadline
    /// budget (ratio < 1.1), or 1.0 if nothing was recorded.
    ///
    /// The tolerance is deliberate: a deadline-bound responder answers
    /// *at* the deadline, so an on-time response records a ratio
    /// fractionally above 1.0 purely from scheduling latency. Only the
    /// unbounded overshoot bucket counts as a miss; the 1.0 edge keeps
    /// exact-budget arrivals visible in [`Self::buckets`].
    pub fn hit_rate(&self) -> f64 {
        let total = self.count();
        if total == 0 {
            return 1.0;
        }
        let hits: u64 = self.buckets[..DEADLINE_BUCKET_EDGES.len()].iter().sum();
        hits as f64 / total as f64
    }
}

/// Cumulative counters for one [`crate::serve::ServePool`]'s robustness
/// machinery: admission control, load shedding, hedging, retries, and the
/// per-replica circuit breakers. Relaxed atomics: diagnostics, not
/// synchronization.
#[derive(Debug, Default)]
pub struct ServeCounters {
    admitted: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    hedged: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    retried: AtomicU64,
    breaker_opens: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    degraded_responses: AtomicU64,
}

impl ServeCounters {
    pub(crate) fn record_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_hedged(&self) {
        self.hedged.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_batch(&self, size: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
        self.batched_requests.fetch_add(size, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_retried(&self) {
        self.retried.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_breaker_open(&self) {
        self.breaker_opens.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_completed(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_degraded_response(&self) {
        self.degraded_responses.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    /// A point-in-time copy of the counters (the non-counter fields of
    /// [`ServeStats`] start at their defaults; the pool fills them in).
    pub fn snapshot(&self) -> ServeStats {
        ServeStats {
            // relaxed: point-in-time diagnostic snapshot; readers tolerate skew
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            hedged: self.hedged.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            degraded_responses: self.degraded_responses.load(Ordering::Relaxed),
            deadline: DeadlineHistogramStats::default(),
            faults: FaultStats::default(),
            live_runs: 0,
            rta: RtaStats::default(),
            governor: GovernorStats::default(),
        }
    }
}

impl Observe for ServeCounters {
    fn name(&self) -> &str {
        "serve"
    }

    fn render(&self, out: &mut dyn fmt::Write) -> fmt::Result {
        render_serve_counters(out, &self.snapshot(), &[])
    }
}

impl MetricSet for ServeCounters {
    type Stats = ServeStats;

    fn snapshot(&self) -> ServeStats {
        ServeCounters::snapshot(self)
    }
}

/// Writes the counter portion of one [`ServeStats`] in the Prometheus text
/// format (the deadline histogram and fault aggregates render separately).
pub(crate) fn render_serve_counters(
    out: &mut dyn fmt::Write,
    s: &ServeStats,
    labels: &[(&str, &str)],
) -> fmt::Result {
    write_type(out, "anytime_serve_requests_total", "counter")?;
    for (event, value) in [
        ("admitted", s.admitted),
        ("rejected", s.rejected),
        ("shed", s.shed),
        ("hedged", s.hedged),
        ("batched", s.batched_requests),
        ("retried", s.retried),
        ("breaker_opens", s.breaker_opens),
        ("completed", s.completed),
        ("failed", s.failed),
        ("degraded_responses", s.degraded_responses),
    ] {
        let mut labeled: Vec<(&str, &str)> = labels.to_vec();
        labeled.push(("event", event));
        write_sample(out, "anytime_serve_requests_total", &labeled, value as f64)?;
    }
    write_type(out, "anytime_serve_batches_total", "counter")?;
    write_sample(out, "anytime_serve_batches_total", labels, s.batches as f64)?;
    write_type(out, "anytime_serve_live_runs", "gauge")?;
    write_sample(out, "anytime_serve_live_runs", labels, s.live_runs as f64)
}

impl MetricStats for ServeStats {
    fn absorb(&mut self, other: &Self) {
        self.admitted += other.admitted;
        self.rejected += other.rejected;
        self.shed += other.shed;
        self.hedged += other.hedged;
        self.batches += other.batches;
        self.batched_requests += other.batched_requests;
        self.retried += other.retried;
        self.breaker_opens += other.breaker_opens;
        self.completed += other.completed;
        self.failed += other.failed;
        self.degraded_responses += other.degraded_responses;
        MetricStats::absorb(&mut self.deadline, &other.deadline);
        FaultStats::absorb(&mut self.faults, &other.faults);
        self.live_runs += other.live_runs;
        MetricStats::absorb(&mut self.rta, &other.rta);
        MetricStats::absorb(&mut self.governor, &other.governor);
    }

    fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

/// A point-in-time view of a serve pool's [`ServeCounters`], deadline-hit
/// histogram, and aggregated pipeline fault handling.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServeStats {
    /// Requests that passed admission control (includes shed requests).
    pub admitted: u64,
    /// Requests rejected fast at admission: projected wait or minimum
    /// service would already blow the deadline, or the queue was full.
    pub rejected: u64,
    /// Requests served a cheaper approximation under saturation instead of
    /// queuing at full budget (degrade quality, never availability).
    pub shed: u64,
    /// Hedge dispatches: a second replica launched after the primary
    /// crossed the latency trigger.
    pub hedged: u64,
    /// Batch runs performed: one pipeline serving several compatible
    /// requests at once.
    pub batches: u64,
    /// Requests served as batch members (each batch contributes its size).
    pub batched_requests: u64,
    /// Serve-layer retries: a replica died permanently and the request was
    /// relaunched with capped exponential backoff.
    pub retried: u64,
    /// Circuit-breaker open transitions (a replica quarantined after
    /// consecutive permanent failures).
    pub breaker_opens: u64,
    /// Requests answered with a snapshot.
    pub completed: u64,
    /// Admitted requests for which no snapshot could be produced.
    pub failed: u64,
    /// Responses flagged degraded: below their quality floor, served from
    /// a degraded pipeline, or answered past a dead replica's best effort.
    pub degraded_responses: u64,
    /// Response arrival relative to deadline budgets.
    pub deadline: DeadlineHistogramStats,
    /// Fault handling aggregated over every pipeline run the pool
    /// performed (each run's [`crate::RunReport`]-level `FaultStats`).
    pub faults: FaultStats,
    /// Pipeline runs still live when this snapshot was taken; zero after
    /// shutdown proves no leaked running stages.
    pub live_runs: u64,
    /// Response-time-analysis admission activity, when the pool runs with
    /// an analytical gate (all-zero otherwise).
    pub rta: RtaStats,
    /// Replica-lifecycle and brownout-controller activity, when the pool
    /// runs with a governor (all-zero otherwise).
    pub governor: GovernorStats,
}

/// Cumulative counters for a serve pool's analytical admission gate
/// ([`crate::rta`]): decision verdicts plus the predicted-vs-actual
/// bound-error samples behind the exported gauge. Relaxed atomics:
/// diagnostics, not synchronization.
#[derive(Debug, Default)]
pub struct RtaCounters {
    feasible: AtomicU64,
    infeasible: AtomicU64,
    fallback: AtomicU64,
    bound_samples: AtomicU64,
    bound_violations: AtomicU64,
    ratio_milli_sum: AtomicU64,
}

impl RtaCounters {
    pub(crate) fn record_feasible(&self) {
        self.feasible.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_infeasible(&self) {
        self.infeasible.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_fallback(&self) {
        self.fallback.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    /// Records one predicted-vs-actual sample: the worst-case bound the
    /// gate promised at admission against the response time the request
    /// actually saw. The ratio is accumulated in milli-units so the mean
    /// survives integer counters without a float atomic.
    pub(crate) fn record_bound_sample(&self, predicted: Duration, actual: Duration) {
        let p = predicted.as_nanos().max(1) as f64;
        let ratio = actual.as_nanos() as f64 / p;
        self.bound_samples.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
        if actual > predicted {
            self.bound_violations.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
        }
        self.ratio_milli_sum
            .fetch_add((ratio * 1_000.0) as u64, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    /// A point-in-time copy of the counters (the calibration fields of
    /// [`RtaStats`] start at their defaults; the pool fills them in from
    /// its gate).
    pub fn snapshot(&self) -> RtaStats {
        RtaStats {
            // relaxed: point-in-time diagnostic snapshot; readers tolerate skew
            feasible: self.feasible.load(Ordering::Relaxed),
            infeasible: self.infeasible.load(Ordering::Relaxed),
            fallback: self.fallback.load(Ordering::Relaxed),
            bound_samples: self.bound_samples.load(Ordering::Relaxed),
            bound_violations: self.bound_violations.load(Ordering::Relaxed),
            ratio_milli_sum: self.ratio_milli_sum.load(Ordering::Relaxed),
            calibration_runs: 0,
            calibrated: false,
        }
    }
}

impl Observe for RtaCounters {
    fn name(&self) -> &str {
        "rta"
    }

    fn render(&self, out: &mut dyn fmt::Write) -> fmt::Result {
        render_rta_stats(out, &self.snapshot(), &[])
    }
}

impl MetricSet for RtaCounters {
    type Stats = RtaStats;

    fn snapshot(&self) -> RtaStats {
        RtaCounters::snapshot(self)
    }
}

/// A point-in-time view of a pool's [`RtaCounters`] plus its gate's
/// calibration progress.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RtaStats {
    /// Admissions where the gate produced bounds and found the request
    /// feasible.
    pub feasible: u64,
    /// Requests rejected with a proven-infeasible verdict
    /// ([`crate::CoreError::Infeasible`]).
    pub infeasible: u64,
    /// Admissions decided by the heuristic because the gate was not yet
    /// calibrated (or had never observed the requested floor).
    pub fallback: u64,
    /// Predicted-vs-actual response-time samples recorded.
    pub bound_samples: u64,
    /// Samples whose actual response time exceeded the promised
    /// worst-case bound — each one is the analysis caught lying.
    pub bound_violations: u64,
    /// Sum of per-sample `actual / predicted` ratios in milli-units
    /// (1000 = the bound was exactly met).
    pub ratio_milli_sum: u64,
    /// Calibration runs the gate has absorbed.
    pub calibration_runs: u64,
    /// Whether the gate was active (calibrated) at snapshot time.
    pub calibrated: bool,
}

impl RtaStats {
    /// Mean `actual / predicted-bound` ratio across recorded samples
    /// (0.0 when nothing was recorded). Well below 1.0 means the bound is
    /// honest but slack; above 1.0 means it is being violated on average.
    pub fn bound_error_ratio(&self) -> f64 {
        if self.bound_samples == 0 {
            return 0.0;
        }
        self.ratio_milli_sum as f64 / 1_000.0 / self.bound_samples as f64
    }

    /// Fraction of samples that violated the promised bound.
    pub fn violation_rate(&self) -> f64 {
        if self.bound_samples == 0 {
            return 0.0;
        }
        self.bound_violations as f64 / self.bound_samples as f64
    }
}

impl MetricStats for RtaStats {
    fn absorb(&mut self, other: &Self) {
        self.feasible += other.feasible;
        self.infeasible += other.infeasible;
        self.fallback += other.fallback;
        self.bound_samples += other.bound_samples;
        self.bound_violations += other.bound_violations;
        self.ratio_milli_sum += other.ratio_milli_sum;
        self.calibration_runs += other.calibration_runs;
        self.calibrated |= other.calibrated;
    }

    fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

/// Writes one [`RtaStats`] in the Prometheus text format: decision
/// counters, calibration progress, and the predicted-vs-actual bound-error
/// gauge.
pub(crate) fn render_rta_stats(
    out: &mut dyn fmt::Write,
    s: &RtaStats,
    labels: &[(&str, &str)],
) -> fmt::Result {
    write_type(out, "anytime_rta_decisions_total", "counter")?;
    for (verdict, value) in [
        ("feasible", s.feasible),
        ("infeasible", s.infeasible),
        ("fallback", s.fallback),
    ] {
        let mut labeled: Vec<(&str, &str)> = labels.to_vec();
        labeled.push(("verdict", verdict));
        write_sample(out, "anytime_rta_decisions_total", &labeled, value as f64)?;
    }
    write_type(out, "anytime_rta_calibration_runs_total", "counter")?;
    write_sample(
        out,
        "anytime_rta_calibration_runs_total",
        labels,
        s.calibration_runs as f64,
    )?;
    write_type(out, "anytime_rta_calibrated", "gauge")?;
    write_sample(
        out,
        "anytime_rta_calibrated",
        labels,
        f64::from(u8::from(s.calibrated)),
    )?;
    write_type(out, "anytime_rta_bound_error_ratio", "gauge")?;
    write_sample(
        out,
        "anytime_rta_bound_error_ratio",
        labels,
        s.bound_error_ratio(),
    )?;
    write_type(out, "anytime_rta_bound_violations_total", "counter")?;
    write_sample(
        out,
        "anytime_rta_bound_violations_total",
        labels,
        s.bound_violations as f64,
    )
}

/// Cumulative counters for a serve pool's governor
/// ([`crate::governor`]): replica lifecycle churn (deaths, respawns,
/// drains, operator reconfiguration) and brownout-controller activity.
/// Relaxed atomics: diagnostics, not synchronization.
#[derive(Debug, Default)]
pub struct GovernorCounters {
    ticks: AtomicU64,
    transitions: AtomicU64,
    worker_deaths: AtomicU64,
    worker_respawns: AtomicU64,
    worker_adds: AtomicU64,
    worker_drains: AtomicU64,
    resizes: AtomicU64,
    rolling_restarts: AtomicU64,
    clamped: AtomicU64,
    closure_panics: AtomicU64,
}

impl GovernorCounters {
    pub(crate) fn record_tick(&self) {
        self.ticks.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_transition(&self) {
        self.transitions.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_worker_death(&self) {
        self.worker_deaths.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_worker_respawn(&self) {
        self.worker_respawns.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_worker_add(&self) {
        self.worker_adds.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_worker_drain(&self) {
        self.worker_drains.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_resize(&self) {
        self.resizes.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_rolling_restart(&self) {
        self.rolling_restarts.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_clamped(&self) {
        self.clamped.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    pub(crate) fn record_closure_panic(&self) {
        self.closure_panics.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter, not synchronization
    }

    /// A point-in-time copy of the counters (the gauge fields of
    /// [`GovernorStats`] start at their defaults; the pool fills them in
    /// from its worker registry).
    pub fn snapshot(&self) -> GovernorStats {
        GovernorStats {
            // relaxed: point-in-time diagnostic snapshot; readers tolerate skew
            ticks: self.ticks.load(Ordering::Relaxed),
            transitions: self.transitions.load(Ordering::Relaxed),
            worker_deaths: self.worker_deaths.load(Ordering::Relaxed),
            worker_respawns: self.worker_respawns.load(Ordering::Relaxed),
            worker_adds: self.worker_adds.load(Ordering::Relaxed),
            worker_drains: self.worker_drains.load(Ordering::Relaxed),
            resizes: self.resizes.load(Ordering::Relaxed),
            rolling_restarts: self.rolling_restarts.load(Ordering::Relaxed),
            clamped: self.clamped.load(Ordering::Relaxed),
            closure_panics: self.closure_panics.load(Ordering::Relaxed),
            state: 0,
            workers_live: 0,
            workers_draining: 0,
            workers_target: 0,
        }
    }
}

impl Observe for GovernorCounters {
    fn name(&self) -> &str {
        "governor"
    }

    fn render(&self, out: &mut dyn fmt::Write) -> fmt::Result {
        render_governor_stats(out, &self.snapshot(), &[])
    }
}

impl MetricSet for GovernorCounters {
    type Stats = GovernorStats;

    fn snapshot(&self) -> GovernorStats {
        GovernorCounters::snapshot(self)
    }
}

/// A point-in-time view of a pool's [`GovernorCounters`] plus the live
/// worker-registry gauges the pool fills in at snapshot time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernorStats {
    /// Governor control-loop ticks executed.
    pub ticks: u64,
    /// Brownout-ladder rung transitions (both directions).
    pub transitions: u64,
    /// Worker threads found dead by the governor.
    pub worker_deaths: u64,
    /// Replacement workers spawned to heal a loss (by the governor or a
    /// rolling restart) — operator-initiated growth counts as
    /// `worker_adds` instead.
    pub worker_respawns: u64,
    /// Fresh workers added by `resize()` scale-up (operator-initiated
    /// growth, distinct from crash healing).
    pub worker_adds: u64,
    /// Workers gracefully drained and joined by `resize()` /
    /// `rolling_restart()`.
    pub worker_drains: u64,
    /// `resize()` calls that completed.
    pub resizes: u64,
    /// `rolling_restart()` calls that completed.
    pub rolling_restarts: u64,
    /// Low-floor requests whose budget was clamped under brownout.
    pub clamped: u64,
    /// Caller-closure panics absorbed by the `catch_unwind` fences.
    pub closure_panics: u64,
    /// Current brownout rung as its numeric code
    /// ([`crate::governor::BrownoutState::as_u8`]).
    pub state: u8,
    /// Worker threads currently alive.
    pub workers_live: u64,
    /// Workers currently draining (finishing a run, taking no new work).
    pub workers_draining: u64,
    /// The configured worker-count target.
    pub workers_target: u64,
}

impl MetricStats for GovernorStats {
    fn absorb(&mut self, other: &Self) {
        self.ticks += other.ticks;
        self.transitions += other.transitions;
        self.worker_deaths += other.worker_deaths;
        self.worker_respawns += other.worker_respawns;
        self.worker_adds += other.worker_adds;
        self.worker_drains += other.worker_drains;
        self.resizes += other.resizes;
        self.rolling_restarts += other.rolling_restarts;
        self.clamped += other.clamped;
        self.closure_panics += other.closure_panics;
        // Gauges: keep the most-degraded rung and sum the worker counts
        // (absorbing two pools' views yields their combined fleet).
        self.state = self.state.max(other.state);
        self.workers_live += other.workers_live;
        self.workers_draining += other.workers_draining;
        self.workers_target += other.workers_target;
    }

    fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

/// Writes one [`GovernorStats`] in the Prometheus text format: lifecycle
/// and brownout counters, the brownout-rung gauge, and the worker-state
/// gauges.
pub(crate) fn render_governor_stats(
    out: &mut dyn fmt::Write,
    s: &GovernorStats,
    labels: &[(&str, &str)],
) -> fmt::Result {
    write_type(out, "anytime_serve_governor_total", "counter")?;
    for (event, value) in [
        ("ticks", s.ticks),
        ("transitions", s.transitions),
        ("worker_died", s.worker_deaths),
        ("worker_respawned", s.worker_respawns),
        ("worker_added", s.worker_adds),
        ("worker_drained", s.worker_drains),
        ("resizes", s.resizes),
        ("rolling_restarts", s.rolling_restarts),
        ("clamped", s.clamped),
        ("closure_panics", s.closure_panics),
    ] {
        let mut labeled: Vec<(&str, &str)> = labels.to_vec();
        labeled.push(("event", event));
        write_sample(out, "anytime_serve_governor_total", &labeled, value as f64)?;
    }
    write_type(out, "anytime_serve_brownout_state", "gauge")?;
    write_sample(
        out,
        "anytime_serve_brownout_state",
        labels,
        f64::from(s.state),
    )?;
    write_type(out, "anytime_serve_workers", "gauge")?;
    for (state, value) in [
        ("live", s.workers_live),
        ("draining", s.workers_draining),
        ("target", s.workers_target),
    ] {
        let mut labeled: Vec<(&str, &str)> = labels.to_vec();
        labeled.push(("state", state));
        write_sample(out, "anytime_serve_workers", &labeled, value as f64)?;
    }
    Ok(())
}

/// Writes the per-replica circuit-breaker state gauge
/// (`anytime_serve_breaker_state{replica="..."}`): 0 closed, 1 half-open,
/// 2 open.
pub(crate) fn render_breaker_states(
    out: &mut dyn fmt::Write,
    entries: &[(String, f64)],
) -> fmt::Result {
    if entries.is_empty() {
        return Ok(());
    }
    write_type(out, "anytime_serve_breaker_state", "gauge")?;
    for (replica, value) in entries {
        write_sample(
            out,
            "anytime_serve_breaker_state",
            &[("replica", replica.as_str())],
            *value,
        )?;
    }
    Ok(())
}

/// Mean squared error between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mse(approx: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(
        approx.len(),
        reference.len(),
        "mse requires equal-length slices"
    );
    assert!(!reference.is_empty(), "mse of empty slices is undefined");
    let sum: f64 = approx
        .iter()
        .zip(reference)
        .map(|(a, r)| (a - r) * (a - r))
        .sum();
    sum / reference.len() as f64
}

/// Signal-to-noise ratio of `approx` relative to `reference`, in decibels.
///
/// `SNR = 10·log10(Σ r² / Σ (r − a)²)`. Returns [`f64::INFINITY`] when the
/// outputs are identical (the paper's ∞ dB precise point).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn snr_db(approx: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(
        approx.len(),
        reference.len(),
        "snr requires equal-length slices"
    );
    assert!(!reference.is_empty(), "snr of empty slices is undefined");
    let signal: f64 = reference.iter().map(|r| r * r).sum();
    let noise: f64 = approx
        .iter()
        .zip(reference)
        .map(|(a, r)| (a - r) * (a - r))
        .sum();
    if noise == 0.0 {
        f64::INFINITY
    } else if signal == 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * (signal / noise).log10()
    }
}

/// Peak signal-to-noise ratio in decibels, for signals with a known peak
/// value (e.g. 255 for 8-bit images).
///
/// Returns [`f64::INFINITY`] when the outputs are identical.
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or `peak <= 0`.
pub fn psnr_db(approx: &[f64], reference: &[f64], peak: f64) -> f64 {
    assert!(peak > 0.0, "peak must be positive");
    let m = mse(approx, reference);
    if m == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (peak * peak / m).log10()
    }
}

/// A metric scoring an approximate value against a precise reference.
///
/// Higher scores mean better accuracy. Implemented for the slice metrics
/// here; application crates implement it for their own output types
/// (e.g. images).
pub trait QualityMetric<T: ?Sized> {
    /// Scores `approx` against `reference`; higher is more accurate.
    fn score(&self, approx: &T, reference: &T) -> f64;
}

/// [`QualityMetric`] adapter for [`snr_db`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnrDb;

impl QualityMetric<[f64]> for SnrDb {
    fn score(&self, approx: &[f64], reference: &[f64]) -> f64 {
        snr_db(approx, reference)
    }
}

impl QualityMetric<Vec<f64>> for SnrDb {
    fn score(&self, approx: &Vec<f64>, reference: &Vec<f64>) -> f64 {
        snr_db(approx, reference)
    }
}

/// [`QualityMetric`] adapter for negated [`mse`] (higher is better).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NegMse;

impl QualityMetric<[f64]> for NegMse {
    fn score(&self, approx: &[f64], reference: &[f64]) -> f64 {
        -mse(approx, reference)
    }
}

impl QualityMetric<Vec<f64>> for NegMse {
    fn score(&self, approx: &Vec<f64>, reference: &Vec<f64>) -> f64 {
        -mse(approx, reference)
    }
}

/// A recorded runtime–accuracy profile: the data behind the paper's
/// Figures 11–15.
#[derive(Debug, Clone, Default)]
pub struct AccuracyTrace {
    points: Vec<(Duration, f64)>,
}

impl AccuracyTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an observation.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the previous observation.
    pub fn push(&mut self, at: Duration, score: f64) {
        if let Some(&(prev, _)) = self.points.last() {
            assert!(at >= prev, "observations must be in time order");
        }
        self.points.push((at, score));
    }

    /// The recorded `(time, score)` points, oldest first.
    pub fn points(&self) -> &[(Duration, f64)] {
        &self.points
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last recorded score, if any.
    pub fn final_score(&self) -> Option<f64> {
        self.points.last().map(|&(_, s)| s)
    }

    /// Checks the anytime guarantee: scores never *decrease* by more than
    /// `tolerance` between consecutive observations.
    ///
    /// A small tolerance absorbs metric noise (e.g. a weighted-sample
    /// estimate that wobbles before converging); `0.0` demands strict
    /// non-decrease.
    pub fn is_monotone_nondecreasing(&self, tolerance: f64) -> bool {
        self.points.windows(2).all(|w| w[1].1 >= w[0].1 - tolerance)
    }

    /// The earliest time at which the score reached `threshold`, if ever.
    pub fn time_to_score(&self, threshold: f64) -> Option<Duration> {
        self.points
            .iter()
            .find(|&&(_, s)| s >= threshold)
            .map(|&(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_basics() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(mse(&[0.0, 0.0], &[3.0, 4.0]), 12.5);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mse_length_mismatch_panics() {
        mse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn mse_empty_panics() {
        mse(&[], &[]);
    }

    #[test]
    fn snr_identical_is_infinite() {
        assert_eq!(snr_db(&[5.0, 5.0], &[5.0, 5.0]), f64::INFINITY);
    }

    #[test]
    fn snr_known_value() {
        // signal = 100, noise = 1 -> 20 dB.
        let got = snr_db(&[9.0, 0.0], &[10.0, 0.0]);
        assert!((got - 20.0).abs() < 1e-9, "got {got}");
    }

    #[test]
    fn snr_zero_signal() {
        assert_eq!(snr_db(&[1.0], &[0.0]), f64::NEG_INFINITY);
    }

    #[test]
    fn snr_improves_as_output_converges() {
        let reference = [4.0, 8.0, 15.0, 16.0, 23.0, 42.0];
        let mut approx = [0.0; 6];
        let mut last = f64::NEG_INFINITY;
        for i in 0..6 {
            approx[i] = reference[i];
            let s = snr_db(&approx, &reference);
            assert!(s >= last);
            last = s;
        }
        assert_eq!(last, f64::INFINITY);
    }

    #[test]
    fn psnr_known_value() {
        // MSE 1 with peak 255 -> 10*log10(65025) ≈ 48.13 dB.
        let got = psnr_db(&[1.0, 2.0], &[2.0, 3.0], 255.0);
        assert!((got - 48.1308).abs() < 1e-3, "got {got}");
        assert_eq!(psnr_db(&[1.0], &[1.0], 255.0), f64::INFINITY);
    }

    #[test]
    fn quality_metric_trait_objects() {
        let snr: &dyn QualityMetric<[f64]> = &SnrDb;
        assert_eq!(snr.score(&[1.0], &[1.0]), f64::INFINITY);
        let neg: &dyn QualityMetric<[f64]> = &NegMse;
        assert_eq!(neg.score(&[0.0], &[2.0]), -4.0);
    }

    #[test]
    fn trace_monotonicity() {
        let mut t = AccuracyTrace::new();
        assert!(t.is_empty());
        t.push(Duration::from_millis(1), 1.0);
        t.push(Duration::from_millis(2), 2.0);
        t.push(Duration::from_millis(3), 1.95);
        assert_eq!(t.len(), 3);
        assert!(!t.is_monotone_nondecreasing(0.0));
        assert!(t.is_monotone_nondecreasing(0.1));
        assert_eq!(t.final_score(), Some(1.95));
        assert_eq!(t.time_to_score(2.0), Some(Duration::from_millis(2)));
        assert_eq!(t.time_to_score(99.0), None);
    }

    #[test]
    fn fault_counters_snapshot() {
        let c = FaultCounters::default();
        assert!(c.snapshot().is_clean());
        c.record_restart();
        c.record_restart();
        c.record_stall();
        c.record_degradation();
        c.record_permanent_failure();
        let s = c.snapshot();
        assert_eq!(s.restarts, 2);
        assert_eq!(s.stalls, 1);
        assert_eq!(s.degradations, 1);
        assert_eq!(s.permanent_failures, 1);
        assert_eq!(s.dropped_publishes, 0);
        assert!(!s.is_clean());
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn trace_rejects_time_travel() {
        let mut t = AccuracyTrace::new();
        t.push(Duration::from_millis(5), 1.0);
        t.push(Duration::from_millis(1), 2.0);
    }

    /// Pins P50/P95/P99 on a known distribution: interpolation must place
    /// the estimate *inside* the bucket, proportional to the rank, instead
    /// of snapping to a bucket edge (which biased hedge triggers by up to
    /// a full power of two).
    #[test]
    fn quantile_interpolates_within_bucket() {
        let h = LatencyHistogram::default();
        // 90 samples in the [512 µs, 1024 µs) bucket, 10 in [8192, 16384).
        for _ in 0..90 {
            h.record(Duration::from_micros(700));
        }
        for _ in 0..10 {
            h.record(Duration::from_micros(10_000));
        }
        let us = |q: f64| h.quantile(q).unwrap().as_secs_f64() * 1e6;
        // P50: rank 50 of 90 in [512, 1024) -> 512 + 512·(49.5/90).
        assert!((us(0.50) - 793.6).abs() < 0.1, "p50 = {}", us(0.50));
        // P95: rank 95 -> 5th of 10 in [8192, 16384) -> 8192 + 8192·0.45.
        assert!((us(0.95) - 11_878.4).abs() < 0.1, "p95 = {}", us(0.95));
        // P99: rank 99 -> 9th of 10 -> 8192 + 8192·0.85.
        assert!((us(0.99) - 15_155.2).abs() < 0.1, "p99 = {}", us(0.99));
        // Quantiles stay within the bucket that contains their rank.
        assert!(us(1.0) < 16_384.0 && us(1.0) >= 8192.0);
        assert!(us(0.0) >= 512.0 && us(0.0) < 1024.0);
    }

    #[test]
    fn quantile_single_sample_hits_bucket_midpoint() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(600)); // bucket [512, 1024)
        let got = h.quantile(0.5).unwrap().as_secs_f64() * 1e6;
        assert!((got - 768.0).abs() < 0.1, "got {got}");
        assert!(h.quantile(0.5).is_some());
        assert!(LatencyHistogram::default().quantile(0.5).is_none());
    }

    #[test]
    fn metric_stats_absorb_is_uniform() {
        fn fold<S: MetricStats>(a: &S, b: &S) -> S {
            let mut out = a.clone();
            out.absorb(b);
            out
        }

        let w = WaitStats {
            waits: 2,
            total_wait: Duration::from_millis(4),
            ..Default::default()
        };
        let w2 = fold(&w, &w);
        assert_eq!(w2.waits, 4);
        assert_eq!(w2.total_wait, Duration::from_millis(8));
        assert!(!w2.is_clean() && WaitStats::default().is_clean());

        let f = FaultStats {
            restarts: 1,
            ..Default::default()
        };
        assert_eq!(fold(&f, &f).restarts, 2);

        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(100));
        let l = MetricSet::snapshot(&h);
        assert_eq!(fold(&l, &l).count, 2);

        let d = DeadlineHistogram::default();
        d.record(Duration::from_millis(5), Duration::from_millis(10));
        let ds = d.snapshot();
        assert_eq!(fold(&ds, &ds).count(), 2);
        assert!(DeadlineHistogramStats::default().is_clean() && !ds.is_clean());

        let sc = ServeCounters::default();
        sc.record_admitted();
        sc.record_completed();
        let ss = sc.snapshot();
        let ss2 = fold(&ss, &ss);
        assert_eq!((ss2.admitted, ss2.completed), (2, 2));
        assert!(ServeStats::default().is_clean() && !ss2.is_clean());
    }

    #[test]
    fn six_metric_types_render_prometheus() {
        use crate::observe::render_prometheus;
        let wait = WaitCounters::default();
        let faults = FaultCounters::default();
        let latency = LatencyHistogram::default();
        latency.record(Duration::from_micros(300));
        let deadline = DeadlineHistogram::default();
        deadline.record(Duration::from_millis(5), Duration::from_millis(10));
        let serve = ServeCounters::default();
        serve.record_admitted();
        let rta = RtaCounters::default();
        rta.record_feasible();
        let text = render_prometheus(&[&wait, &faults, &latency, &deadline, &serve, &rta]);
        for family in [
            "anytime_wait_waits_total",
            "anytime_faults_total",
            "anytime_latency_seconds_bucket",
            "anytime_deadline_ratio_bucket",
            "anytime_serve_requests_total",
            "anytime_rta_decisions_total",
            "anytime_rta_bound_error_ratio",
        ] {
            assert!(text.contains(family), "missing {family}:\n{text}");
        }
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.contains("anytime_serve_requests_total{event=\"admitted\"} 1"));
        assert!(text.contains("anytime_rta_decisions_total{verdict=\"feasible\"} 1"));
    }

    #[test]
    fn rta_counters_track_decisions_and_bound_error() {
        let rta = RtaCounters::default();
        rta.record_feasible();
        rta.record_feasible();
        rta.record_infeasible();
        rta.record_fallback();
        // Actual half the bound (honest), then 1.5× the bound (violated).
        rta.record_bound_sample(Duration::from_millis(10), Duration::from_millis(5));
        rta.record_bound_sample(Duration::from_millis(10), Duration::from_millis(15));
        let s = MetricSet::snapshot(&rta);
        assert_eq!((s.feasible, s.infeasible, s.fallback), (2, 1, 1));
        assert_eq!(s.bound_samples, 2);
        assert_eq!(s.bound_violations, 1);
        assert!((s.bound_error_ratio() - 1.0).abs() < 0.01, "{s:?}");
        assert_eq!(s.violation_rate(), 0.5);
        assert!(RtaStats::default().is_clean() && !s.is_clean());

        // Folding into ServeStats carries the rta block along.
        let mut total = ServeStats::default();
        let one = ServeStats {
            rta: s,
            ..Default::default()
        };
        MetricStats::absorb(&mut total, &one);
        MetricStats::absorb(&mut total, &one);
        assert_eq!(total.rta.infeasible, 2);
        assert_eq!(total.rta.bound_samples, 4);
    }

    #[test]
    fn rta_stats_handle_empty_samples() {
        let s = RtaStats::default();
        assert_eq!(s.bound_error_ratio(), 0.0);
        assert_eq!(s.violation_rate(), 0.0);
    }

    #[test]
    fn governor_counters_snapshot_and_render() {
        let g = GovernorCounters::default();
        g.record_tick();
        g.record_tick();
        g.record_transition();
        g.record_worker_death();
        g.record_worker_respawn();
        g.record_worker_add();
        g.record_worker_drain();
        g.record_resize();
        g.record_rolling_restart();
        g.record_clamped();
        g.record_closure_panic();
        let mut s = MetricSet::snapshot(&g);
        assert_eq!(s.ticks, 2);
        assert_eq!(s.transitions, 1);
        assert_eq!(s.worker_deaths, 1);
        assert_eq!(s.worker_respawns, 1);
        assert_eq!(s.worker_adds, 1);
        assert!(!s.is_clean() && GovernorStats::default().is_clean());
        s.state = 2;
        s.workers_live = 3;
        s.workers_draining = 1;
        s.workers_target = 4;
        let mut out = String::new();
        render_governor_stats(&mut out, &s, &[]).unwrap();
        assert!(out.contains("anytime_serve_governor_total{event=\"worker_died\"} 1"));
        assert!(out.contains("anytime_serve_governor_total{event=\"worker_added\"} 1"));
        assert!(out.contains("anytime_serve_governor_total{event=\"clamped\"} 1"));
        assert!(out.contains("anytime_serve_brownout_state 2"));
        assert!(out.contains("anytime_serve_workers{state=\"live\"} 3"));
        assert!(out.contains("anytime_serve_workers{state=\"target\"} 4"));

        // Folding into ServeStats carries the governor block along, keeps
        // the most-degraded rung, and sums the fleet gauges.
        let mut total = ServeStats::default();
        let one = ServeStats {
            governor: s,
            ..Default::default()
        };
        MetricStats::absorb(&mut total, &one);
        MetricStats::absorb(&mut total, &one);
        assert_eq!(total.governor.ticks, 4);
        assert_eq!(total.governor.state, 2);
        assert_eq!(total.governor.workers_live, 6);
    }

    #[test]
    fn breaker_state_gauge_renders_per_replica() {
        let mut out = String::new();
        render_breaker_states(&mut out, &[]).unwrap();
        assert!(out.is_empty(), "no replicas, no family: {out}");
        render_breaker_states(
            &mut out,
            &[
                ("replica-0".to_string(), 0.0),
                ("replica-1".to_string(), 2.0),
            ],
        )
        .unwrap();
        assert!(out.contains("anytime_serve_breaker_state{replica=\"replica-0\"} 0"));
        assert!(out.contains("anytime_serve_breaker_state{replica=\"replica-1\"} 2"));
    }
}
