//! Unified observability API: the [`Observe`] / [`MetricSet`] traits and
//! the shared Prometheus-style text exposition.
//!
//! Before this module the repo had five disjoint counter types
//! ([`crate::metrics::WaitCounters`], [`crate::metrics::FaultCounters`],
//! [`crate::metrics::LatencyHistogram`],
//! [`crate::metrics::DeadlineHistogram`],
//! [`crate::metrics::ServeCounters`]) with ad-hoc snapshot conventions and
//! no common export path. They — plus the later
//! [`crate::metrics::RtaCounters`] — now share one contract:
//!
//! - [`Observe`] — object-safe: a metric family [`Observe::name`] and a
//!   [`Observe::render`] into the Prometheus text format;
//! - [`MetricSet`] — adds the typed [`MetricSet::snapshot`], whose stats
//!   type implements [`MetricStats`] (uniform `absorb` / `is_clean`);
//! - [`render_prometheus`] — concatenates any mix of metric sets into one
//!   exposition body.
//!
//! The event-stream half of observability (what happened *when*) lives in
//! [`crate::trace`].

use std::fmt;

/// An object-safe view of a metric source: a family name and a Prometheus
/// text rendering.
///
/// Metric names rendered by implementations are prefixed
/// `anytime_<name()>_…`, so a set of sources renders into one coherent
/// exposition via [`render_prometheus`].
pub trait Observe {
    /// The metric family name (e.g. `"wait"`, `"serve"`), without prefix.
    fn name(&self) -> &str;

    /// Writes this source's metrics in the Prometheus text format.
    fn render(&self, out: &mut dyn fmt::Write) -> fmt::Result;
}

/// A metric source with a typed point-in-time snapshot.
///
/// All six counter types implement this; their stats types all
/// implement [`MetricStats`], so aggregation code can be generic over
/// "some counters I can snapshot and fold together".
pub trait MetricSet: Observe {
    /// The snapshot type.
    type Stats: MetricStats;

    /// A point-in-time copy of the counters.
    fn snapshot(&self) -> Self::Stats;
}

/// Uniform operations on metric snapshots.
pub trait MetricStats: Clone + Default {
    /// Accumulates another snapshot into this one.
    fn absorb(&mut self, other: &Self);

    /// `true` if nothing was recorded (the snapshot equals its default).
    fn is_clean(&self) -> bool;
}

/// Renders any mix of metric sources into one Prometheus exposition body.
pub fn render_prometheus(sets: &[&dyn Observe]) -> String {
    let mut out = String::new();
    for set in sets {
        set.render(&mut out)
            .expect("rendering to a String cannot fail");
    }
    out
}

/// Writes a `# TYPE` header for a metric family.
pub fn write_type(out: &mut dyn fmt::Write, family: &str, kind: &str) -> fmt::Result {
    writeln!(out, "# TYPE {family} {kind}")
}

/// Writes one sample line: `family{labels} value`.
///
/// Label values are escaped per the exposition format (backslash, quote,
/// newline).
pub fn write_sample(
    out: &mut dyn fmt::Write,
    family: &str,
    labels: &[(&str, &str)],
    value: f64,
) -> fmt::Result {
    out.write_str(family)?;
    if !labels.is_empty() {
        out.write_char('{')?;
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.write_char(',')?;
            }
            write!(out, "{k}=\"{}\"", escape_label(v))?;
        }
        out.write_char('}')?;
    }
    if value.is_finite() && value.fract() == 0.0 && value.abs() < 9e15 {
        writeln!(out, " {}", value as i64)
    } else if value.is_nan() {
        writeln!(out, " NaN")
    } else if value == f64::INFINITY {
        writeln!(out, " +Inf")
    } else if value == f64::NEG_INFINITY {
        writeln!(out, " -Inf")
    } else {
        writeln!(out, " {value}")
    }
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;

    impl Observe for Fake {
        fn name(&self) -> &str {
            "fake"
        }

        fn render(&self, out: &mut dyn fmt::Write) -> fmt::Result {
            write_type(out, "anytime_fake_total", "counter")?;
            write_sample(out, "anytime_fake_total", &[("stage", "f\"g")], 3.0)
        }
    }

    #[test]
    fn render_prometheus_concatenates() {
        let text = render_prometheus(&[&Fake, &Fake]);
        assert_eq!(text.matches("# TYPE anytime_fake_total counter").count(), 2);
        assert!(text.contains("anytime_fake_total{stage=\"f\\\"g\"} 3\n"));
    }

    #[test]
    fn sample_formatting() {
        let mut s = String::new();
        write_sample(&mut s, "m", &[], 2.0).unwrap();
        write_sample(&mut s, "m", &[], 0.25).unwrap();
        write_sample(&mut s, "m", &[], f64::INFINITY).unwrap();
        assert_eq!(s, "m 2\nm 0.25\nm +Inf\n");
    }
}
