use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Errors produced by the anytime automaton runtime.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// The automaton was stopped before the operation could complete.
    Stopped,
    /// An upstream buffer was closed (its producer exited or panicked)
    /// without publishing a final output.
    SourceClosed {
        /// Name of the buffer whose producer disappeared.
        buffer: String,
    },
    /// A wait timed out.
    Timeout,
    /// A stage body panicked.
    StagePanicked {
        /// Name of the failing stage.
        stage: String,
        /// The panic payload, when it was a `String` or `&str`. `None`
        /// means the payload was an opaque non-string type; the display
        /// rendering says so explicitly rather than pretending it was
        /// empty.
        message: Option<String>,
        /// Anytime steps the stage had completed when it died.
        steps_at_death: u64,
    },
    /// A pipeline was configured inconsistently.
    InvalidConfig(String),
    /// A synchronous-pipeline update channel was disconnected.
    ChannelClosed,
    /// A serve request was rejected fast at admission: the projected time
    /// to a first answer already exceeds the request's deadline budget, so
    /// queuing it would only waste capacity the queue's other requests
    /// still have a chance of using.
    AdmissionRejected {
        /// Projected time until this request could produce an answer
        /// (queue wait plus minimum service time).
        projected: Duration,
        /// The request's deadline budget.
        budget: Duration,
    },
    /// A serve request was rejected because response-time analysis
    /// *proved* its (deadline, floor) pair infeasible: even under the
    /// calibrated optimistic model (fastest observed quality crossings,
    /// scaled down by the gate's optimism factor), the current backlog
    /// cannot raise output quality to `floor` within `budget`. Unlike
    /// [`CoreError::AdmissionRejected`] — a heuristic projection — this
    /// carries a certified bound: resubmitting with `budget >= bound`
    /// is the fix, retrying the same budget is not.
    Infeasible {
        /// Certified lower bound on the time to reach `floor` given the
        /// backlog observed at admission.
        bound: Duration,
        /// The request's deadline budget (strictly below `bound`).
        budget: Duration,
        /// The quality floor the bound was computed for.
        floor: f64,
    },
    /// A serve request was rejected fast at admission because the pool's
    /// queue was already at capacity — a load statement, not a deadline
    /// one (the request's budget may well have been feasible).
    QueueFull {
        /// Queue depth observed at admission.
        depth: usize,
        /// The pool's configured queue capacity.
        capacity: usize,
    },
    /// The serve pool was shut down before this request completed.
    PoolShutdown,
    /// A caller-supplied serve closure (pipeline factory, batch factory,
    /// or quality estimator) panicked inside a worker. The panic was
    /// fenced by `catch_unwind`, so the worker survives and the run is
    /// reported as this structured failure, feeding the pool's retry and
    /// circuit-breaker machinery instead of silently killing capacity.
    ReplicaPanicked {
        /// Index of the replica whose run absorbed the panic.
        replica: usize,
        /// Which closure panicked: `"pipeline factory"`,
        /// `"batch factory"`, or `"quality estimator"`.
        context: &'static str,
        /// The panic payload, when it was a `String` or `&str`.
        message: Option<String>,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Stopped => write!(f, "automaton was stopped"),
            Self::SourceClosed { buffer } => {
                write!(
                    f,
                    "producer of buffer `{buffer}` exited without a final output"
                )
            }
            Self::Timeout => write!(f, "wait timed out"),
            Self::StagePanicked {
                stage,
                message,
                steps_at_death,
            } => match message {
                Some(msg) => {
                    write!(
                        f,
                        "stage `{stage}` panicked after {steps_at_death} steps: {msg}"
                    )
                }
                None => write!(
                    f,
                    "stage `{stage}` panicked after {steps_at_death} steps \
                     with an opaque (non-string) payload"
                ),
            },
            Self::InvalidConfig(msg) => write!(f, "invalid pipeline configuration: {msg}"),
            Self::ChannelClosed => write!(f, "synchronous update channel disconnected"),
            Self::AdmissionRejected { projected, budget } => write!(
                f,
                "admission rejected: projected {projected:?} to first answer \
                 exceeds deadline budget {budget:?}"
            ),
            Self::Infeasible {
                bound,
                budget,
                floor,
            } => write!(
                f,
                "admission rejected: analysis proves quality floor {floor} is \
                 unreachable within {budget:?} (certified lower bound {bound:?})"
            ),
            Self::QueueFull { depth, capacity } => write!(
                f,
                "admission rejected: serve queue is full ({depth} queued, capacity {capacity})"
            ),
            Self::PoolShutdown => write!(f, "serve pool was shut down"),
            Self::ReplicaPanicked {
                replica,
                context,
                message,
            } => match message {
                Some(msg) => write!(
                    f,
                    "replica {replica}: {context} panicked during a serve run: {msg}"
                ),
                None => write!(
                    f,
                    "replica {replica}: {context} panicked during a serve run \
                     with an opaque (non-string) payload"
                ),
            },
        }
    }
}

impl Error for CoreError {}

/// Result alias for automaton operations.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let variants: Vec<CoreError> = vec![
            CoreError::Stopped,
            CoreError::SourceClosed { buffer: "F".into() },
            CoreError::Timeout,
            CoreError::StagePanicked {
                stage: "g".into(),
                message: Some("boom".into()),
                steps_at_death: 7,
            },
            CoreError::InvalidConfig("empty pipeline".into()),
            CoreError::ChannelClosed,
            CoreError::AdmissionRejected {
                projected: Duration::from_millis(80),
                budget: Duration::from_millis(50),
            },
            CoreError::QueueFull {
                depth: 64,
                capacity: 64,
            },
            CoreError::Infeasible {
                bound: Duration::from_millis(9),
                budget: Duration::from_millis(4),
                floor: 0.5,
            },
            CoreError::PoolShutdown,
            CoreError::ReplicaPanicked {
                replica: 1,
                context: "quality estimator",
                message: None,
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn stage_panicked_renders_string_payload() {
        let e = CoreError::StagePanicked {
            stage: "g".into(),
            message: Some("boom".into()),
            steps_at_death: 7,
        };
        let s = e.to_string();
        assert!(s.contains("`g`"), "{s}");
        assert!(s.contains("after 7 steps"), "{s}");
        assert!(s.contains("boom"), "{s}");
        assert!(!s.contains("opaque"), "{s}");
    }

    #[test]
    fn stage_panicked_names_opaque_payload() {
        let e = CoreError::StagePanicked {
            stage: "g".into(),
            message: None,
            steps_at_death: 3,
        };
        let s = e.to_string();
        assert!(s.contains("opaque (non-string) payload"), "{s}");
        assert!(s.contains("after 3 steps"), "{s}");
    }

    #[test]
    fn admission_rejected_names_both_durations() {
        let e = CoreError::AdmissionRejected {
            projected: Duration::from_millis(80),
            budget: Duration::from_millis(50),
        };
        let s = e.to_string();
        assert!(s.contains("80ms"), "{s}");
        assert!(s.contains("50ms"), "{s}");
    }

    #[test]
    fn queue_full_names_depth_and_capacity() {
        let e = CoreError::QueueFull {
            depth: 64,
            capacity: 64,
        };
        let s = e.to_string();
        assert!(s.contains("64 queued"), "{s}");
        assert!(s.contains("capacity 64"), "{s}");
    }

    #[test]
    fn infeasible_names_bound_budget_and_floor() {
        let e = CoreError::Infeasible {
            bound: Duration::from_millis(9),
            budget: Duration::from_millis(4),
            floor: 0.5,
        };
        let s = e.to_string();
        assert!(s.contains("floor 0.5"), "{s}");
        assert!(s.contains("4ms"), "{s}");
        assert!(s.contains("bound 9ms"), "{s}");
        assert!(s.contains("proves"), "{s}");
    }

    #[test]
    fn replica_panicked_renders_string_payload() {
        let e = CoreError::ReplicaPanicked {
            replica: 2,
            context: "pipeline factory",
            message: Some("boom".into()),
        };
        let s = e.to_string();
        assert!(s.contains("replica 2"), "{s}");
        assert!(s.contains("pipeline factory"), "{s}");
        assert!(s.contains("boom"), "{s}");
        assert!(!s.contains("opaque"), "{s}");
    }

    #[test]
    fn replica_panicked_names_opaque_payload() {
        let e = CoreError::ReplicaPanicked {
            replica: 0,
            context: "quality estimator",
            message: None,
        };
        let s = e.to_string();
        assert!(s.contains("opaque (non-string) payload"), "{s}");
        assert!(s.contains("quality estimator"), "{s}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
