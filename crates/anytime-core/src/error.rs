use std::error::Error;
use std::fmt;

/// Errors produced by the anytime automaton runtime.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// The automaton was stopped before the operation could complete.
    Stopped,
    /// An upstream buffer was closed (its producer exited or panicked)
    /// without publishing a final output.
    SourceClosed {
        /// Name of the buffer whose producer disappeared.
        buffer: String,
    },
    /// A wait timed out.
    Timeout,
    /// A stage body panicked.
    StagePanicked {
        /// Name of the failing stage.
        stage: String,
        /// Best-effort panic payload rendering.
        message: String,
    },
    /// A pipeline was configured inconsistently.
    InvalidConfig(String),
    /// A synchronous-pipeline update channel was disconnected.
    ChannelClosed,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Stopped => write!(f, "automaton was stopped"),
            Self::SourceClosed { buffer } => {
                write!(
                    f,
                    "producer of buffer `{buffer}` exited without a final output"
                )
            }
            Self::Timeout => write!(f, "wait timed out"),
            Self::StagePanicked { stage, message } => {
                write!(f, "stage `{stage}` panicked: {message}")
            }
            Self::InvalidConfig(msg) => write!(f, "invalid pipeline configuration: {msg}"),
            Self::ChannelClosed => write!(f, "synchronous update channel disconnected"),
        }
    }
}

impl Error for CoreError {}

/// Result alias for automaton operations.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let variants: Vec<CoreError> = vec![
            CoreError::Stopped,
            CoreError::SourceClosed { buffer: "F".into() },
            CoreError::Timeout,
            CoreError::StagePanicked {
                stage: "g".into(),
                message: "boom".into(),
            },
            CoreError::InvalidConfig("empty pipeline".into()),
            CoreError::ChannelClosed,
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
