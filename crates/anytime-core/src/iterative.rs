use crate::stage::{AnytimeBody, StepOutcome};

/// Boxed placeholder constructor.
type InitFn<I, O> = Box<dyn FnMut(&I) -> O + Send>;
/// Boxed per-level computation.
type LevelFn<I, O> = Box<dyn FnMut(&I, u64) -> O + Send>;

/// An iterative anytime stage body: re-executes a computation at
/// progressively increasing accuracy levels (paper §III-B1).
///
/// Level `k` (for `k` in `0..levels`) computes a complete output that
/// *overwrites* the previous one; the last level must be the precise
/// computation (the approximation technique disabled). This is the paper's
/// general recipe — it works for any technique (loop perforation,
/// approximate storage, multi-stage neural accelerators à la BRAINIAC) at
/// the cost of redundant work across levels; prefer
/// [`crate::Diffusive`]-style bodies when the technique supports it.
///
/// # Examples
///
/// A stage that averages a slice by examining progressively more elements
/// per level (a crude stand-in for loop perforation):
///
/// ```
/// use anytime_core::{Iterative, AnytimeBody, StepOutcome};
///
/// let mut body = Iterative::new(
///     3,
///     |_input: &Vec<f64>| 0.0,
///     |input: &Vec<f64>, level| {
///         let stride = 1 << (2 - level); // 4, 2, 1: level 2 is precise
///         let taken: Vec<f64> = input.iter().step_by(stride as usize).copied().collect();
///         taken.iter().sum::<f64>() / taken.len() as f64
///     },
/// );
/// let input = vec![1.0, 2.0, 3.0, 4.0];
/// let mut out = body.init(&input);
/// assert_eq!(body.step(&input, &mut out, 0), StepOutcome::Continue);
/// assert_eq!(body.step(&input, &mut out, 1), StepOutcome::Continue);
/// assert_eq!(body.step(&input, &mut out, 2), StepOutcome::Done);
/// assert_eq!(out, 2.5); // precise mean
/// ```
pub struct Iterative<I, O> {
    levels: u64,
    init: InitFn<I, O>,
    level: LevelFn<I, O>,
}

impl<I, O> Iterative<I, O> {
    /// Creates an iterative body with `levels` accuracy levels.
    ///
    /// `init` produces the (unpublished) placeholder output; `level`
    /// computes the complete output at accuracy level `k ∈ [0, levels)`,
    /// where level `levels - 1` must be precise.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0`.
    pub fn new(
        levels: u64,
        init: impl FnMut(&I) -> O + Send + 'static,
        level: impl FnMut(&I, u64) -> O + Send + 'static,
    ) -> Self {
        assert!(levels > 0, "an iterative stage needs at least one level");
        Self {
            levels,
            init: Box::new(init),
            level: Box::new(level),
        }
    }

    /// The number of accuracy levels.
    pub fn levels(&self) -> u64 {
        self.levels
    }
}

impl<I, O> AnytimeBody for Iterative<I, O>
where
    I: Send + Sync + 'static,
    O: Clone + Send + Sync + 'static,
{
    type Input = I;
    type Output = O;

    fn init(&mut self, input: &I) -> O {
        (self.init)(input)
    }

    fn step(&mut self, input: &I, out: &mut O, step: u64) -> StepOutcome {
        *out = (self.level)(input, step);
        if step + 1 >= self.levels {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        }
    }

    fn total_steps(&self, _input: &I) -> Option<u64> {
        Some(self.levels)
    }

    /// Iterative stages always resume: each level overwrites the output,
    /// so a crash-restart picks up at the next unpublished level with the
    /// last published level standing in until it is overwritten.
    fn resume(&mut self, _input: &I, published: &O, _steps_done: u64) -> Option<O> {
        Some(published.clone())
    }
}

impl<I, O> std::fmt::Debug for Iterative<I, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Iterative")
            .field("levels", &self.levels)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_execute_in_order() {
        let mut body = Iterative::new(4, |_: &()| Vec::new(), |_: &(), k| vec![k]);
        let mut out = body.init(&());
        for k in 0..4 {
            let outcome = body.step(&(), &mut out, k);
            assert_eq!(out, vec![k]);
            assert_eq!(
                outcome,
                if k == 3 {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            );
        }
    }

    #[test]
    fn single_level_is_immediately_done() {
        let mut body = Iterative::new(1, |_: &u32| 0u32, |i: &u32, _| *i);
        let mut out = body.init(&9);
        assert_eq!(body.step(&9, &mut out, 0), StepOutcome::Done);
        assert_eq!(out, 9);
    }

    #[test]
    fn total_steps_matches_levels() {
        let body = Iterative::new(7, |_: &()| (), |_: &(), _| ());
        assert_eq!(body.total_steps(&()), Some(7));
        assert_eq!(body.levels(), 7);
    }

    #[test]
    fn resume_adopts_published_level() {
        let mut body = Iterative::new(3, |_: &()| 0u64, |_: &(), k| 10 + k);
        assert_eq!(body.resume(&(), &11, 2), Some(11));
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_panics() {
        let _ = Iterative::new(0, |_: &()| (), |_: &(), _| ());
    }

    #[test]
    fn each_level_overwrites_not_accumulates() {
        // Iterative semantics: level k's output ignores level k-1's.
        let mut body = Iterative::new(3, |_: &()| 0u64, |_: &(), k| 10 + k);
        let mut out = body.init(&());
        body.step(&(), &mut out, 0);
        body.step(&(), &mut out, 1);
        assert_eq!(out, 11); // not 10 + 11
    }
}
