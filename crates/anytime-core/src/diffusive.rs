use crate::stage::{AnytimeBody, StepOutcome};

/// Boxed seed constructor.
type InitFn<I, O> = Box<dyn FnMut(&I) -> O + Send>;
/// Boxed diffusive update.
type UpdateFn<I, O> = Box<dyn FnMut(&I, &mut O, u64) -> StepOutcome + Send>;
/// Boxed step-count hint.
type TotalFn<I> = Box<dyn Fn(&I) -> u64 + Send>;
/// Boxed publication renderer.
type RenderFn<I, O> = Box<dyn Fn(&O, &I, u64) -> O + Send>;

/// A diffusive anytime stage body: each step *builds upon* the current
/// output instead of overwriting it (paper §III-B2).
///
/// Diffusive stages avoid the redundant work of [`crate::Iterative`]
/// re-execution: every intermediate computation `f_i(I, O_{i-1}) → O_i`
/// contributes usefully to the final precise result. Accuracy is "diffused"
/// into the output buffer. The constructor takes:
///
/// - `init`: produces the diffusion seed `O_0` (e.g. a zeroed image, an
///   empty histogram);
/// - `update`: performs update `i`, mutating the working output, and reports
///   [`StepOutcome::Done`] when the output has become precise.
///
/// For the two common diffusive patterns the paper identifies — input
/// sampling on reductions and output sampling on maps — use the dedicated
/// [`crate::SampledReduce`] and [`crate::SampledMap`] bodies, which handle
/// permutations and normalization.
///
/// # Examples
///
/// A running sum diffusing one element per step:
///
/// ```
/// use anytime_core::{Diffusive, AnytimeBody, StepOutcome};
///
/// let mut body = Diffusive::new(
///     |_input: &Vec<u64>| 0u64,
///     |input: &Vec<u64>, out: &mut u64, step| {
///         *out += input[step as usize];
///         if step as usize + 1 == input.len() {
///             StepOutcome::Done
///         } else {
///             StepOutcome::Continue
///         }
///     },
/// );
/// let input = vec![5, 6, 7];
/// let mut out = body.init(&input);
/// assert_eq!(body.step(&input, &mut out, 0), StepOutcome::Continue);
/// ```
pub struct Diffusive<I, O> {
    init: InitFn<I, O>,
    update: UpdateFn<I, O>,
    total: Option<TotalFn<I>>,
    render: Option<RenderFn<I, O>>,
}

impl<I, O> Diffusive<I, O> {
    /// Creates a diffusive body from a seed constructor and an update
    /// function.
    pub fn new(
        init: impl FnMut(&I) -> O + Send + 'static,
        update: impl FnMut(&I, &mut O, u64) -> StepOutcome + Send + 'static,
    ) -> Self {
        Self {
            init: Box::new(init),
            update: Box::new(update),
            total: None,
            render: None,
        }
    }

    /// Declares the total number of update steps for progress reporting.
    pub fn with_total_steps(mut self, total: impl Fn(&I) -> u64 + Send + 'static) -> Self {
        self.total = Some(Box::new(total));
        self
    }

    /// Sets a render function deriving the published value from the working
    /// output (e.g. normalization) without disturbing the working state.
    pub fn with_render(mut self, render: impl Fn(&O, &I, u64) -> O + Send + 'static) -> Self {
        self.render = Some(Box::new(render));
        self
    }
}

impl<I, O> AnytimeBody for Diffusive<I, O>
where
    I: Send + Sync + 'static,
    O: Clone + Send + Sync + 'static,
{
    type Input = I;
    type Output = O;

    fn init(&mut self, input: &I) -> O {
        (self.init)(input)
    }

    fn step(&mut self, input: &I, out: &mut O, step: u64) -> StepOutcome {
        (self.update)(input, out, step)
    }

    fn total_steps(&self, input: &I) -> Option<u64> {
        self.total.as_ref().map(|f| f(input))
    }

    fn render(&self, out: &O, input: &I, steps_done: u64) -> O {
        match &self.render {
            Some(f) => f(out, input, steps_done),
            None => out.clone(),
        }
    }

    /// Diffusive stages resume from their own output buffer: without a
    /// custom render, the last published version *is* the working state, so
    /// a crash-restart continues diffusing into it. With a render, the
    /// publication is a transformation of the working state and cannot be
    /// resumed from.
    fn resume(&mut self, _input: &I, published: &O, _steps_done: u64) -> Option<O> {
        if self.render.is_none() {
            Some(published.clone())
        } else {
            None
        }
    }
}

impl<I, O> std::fmt::Debug for Diffusive<I, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Diffusive")
            .field("has_total", &self.total.is_some())
            .field("has_render", &self.render.is_some())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summing_body() -> Diffusive<Vec<u64>, u64> {
        Diffusive::new(
            |_: &Vec<u64>| 0u64,
            |input: &Vec<u64>, out: &mut u64, step| {
                *out += input[step as usize];
                if step as usize + 1 == input.len() {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            },
        )
    }

    #[test]
    fn updates_accumulate() {
        let mut body = summing_body();
        let input = vec![1, 2, 3, 4];
        let mut out = body.init(&input);
        for step in 0..4 {
            let outcome = body.step(&input, &mut out, step);
            assert_eq!(
                outcome,
                if step == 3 {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            );
        }
        assert_eq!(out, 10);
    }

    #[test]
    fn render_does_not_disturb_working_state() {
        let mut body =
            summing_body().with_render(|acc, input, done| acc * input.len() as u64 / done.max(1));
        let input = vec![10, 10, 10, 10];
        let mut out = body.init(&input);
        body.step(&input, &mut out, 0);
        body.step(&input, &mut out, 1);
        // Working accumulator is 20; the rendered (weighted) value
        // extrapolates to the full population.
        assert_eq!(body.render(&out, &input, 2), 40);
        assert_eq!(out, 20);
    }

    #[test]
    fn default_render_clones() {
        let mut body = summing_body();
        let input = vec![7];
        let mut out = body.init(&input);
        body.step(&input, &mut out, 0);
        assert_eq!(body.render(&out, &input, 1), 7);
    }

    #[test]
    fn resume_only_without_custom_render() {
        let mut plain = summing_body();
        assert_eq!(plain.resume(&vec![1, 2], &5, 1), Some(5));
        let mut rendered = summing_body().with_render(|acc, _, _| *acc);
        assert_eq!(rendered.resume(&vec![1, 2], &5, 1), None);
    }

    #[test]
    fn total_steps_hint() {
        let body = summing_body().with_total_steps(|i: &Vec<u64>| i.len() as u64);
        assert_eq!(body.total_steps(&vec![1, 2, 3]), Some(3));
        assert_eq!(summing_body().total_steps(&vec![1]), None);
    }
}
