//! Deterministic, seeded fault injection for chaos testing.
//!
//! Only compiled with the `fault-inject` feature. A [`FaultPlan`] maps
//! stage names to [`StageFaults`] — panic at step *N*, stall for a
//! duration at step *N*, or a fixed per-step slowdown — and is applied to
//! a built [`crate::Pipeline`] before launch. Faults fire at the stage
//! driver's step boundaries, the same places the [`crate::ControlToken`]
//! checkpoints, so every injected failure lands at a point where the
//! published output is a complete, valid version (Property 3 is never
//! violated *by* the harness).
//!
//! Plans are **deterministic**: [`FaultPlan::seeded`] derives the whole
//! schedule from a single `u64` seed with a SplitMix64 generator, so a
//! failing chaos run reproduces exactly from its seed — same stages, same
//! fault kinds, same steps, same durations, byte-identical
//! [`FaultPlan::schedule`] rendering.
//!
//! Injected panics and stalls are **one-shot**: they fire the first time
//! the stage reaches the configured step and are disarmed afterwards, so a
//! stage restarted by [`crate::FailurePolicy::Restart`] models recovery
//! from a *transient* fault and can reach its precise output. Slowdowns
//! persist for the stage's lifetime.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::Duration;

/// Faults injected into one stage, firing at step boundaries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageFaults {
    /// Panic (with a recognizable message) just before executing this step.
    pub panic_at_step: Option<u64>,
    /// Sleep for the duration just before executing the given step.
    pub stall_at_step: Option<(u64, Duration)>,
    /// Extra delay added before every step.
    pub slowdown_per_step: Option<Duration>,
}

impl StageFaults {
    /// `true` if no fault is configured.
    pub fn is_empty(&self) -> bool {
        self.panic_at_step.is_none()
            && self.stall_at_step.is_none()
            && self.slowdown_per_step.is_none()
    }
}

/// Armed per-stage fault state carried by a stage driver.
///
/// Tracks which one-shot faults have fired so a restarted driver does not
/// re-fire a transient panic or stall.
#[derive(Debug, Default)]
pub(crate) struct ArmedFaults {
    faults: StageFaults,
    panic_fired: bool,
    stall_fired: bool,
}

impl ArmedFaults {
    pub(crate) fn new(faults: StageFaults) -> Self {
        Self {
            faults,
            panic_fired: false,
            stall_fired: false,
        }
    }

    /// Applies faults due at the given step boundary. Called by stage
    /// drivers just before executing `step`.
    ///
    /// # Panics
    ///
    /// Panics (once) when an injected panic is due.
    pub(crate) fn before_step(&mut self, stage: &str, step: u64) {
        if let Some(delay) = self.faults.slowdown_per_step {
            // lint: allow(l2-sleep) -- deliberate fault injection: the sleep IS the fault
            std::thread::sleep(delay);
        }
        if !self.stall_fired {
            if let Some((at, dur)) = self.faults.stall_at_step {
                if step >= at {
                    self.stall_fired = true;
                    // lint: allow(l2-sleep) -- deliberate fault injection: the stall IS the fault
                    std::thread::sleep(dur);
                }
            }
        }
        if !self.panic_fired {
            if let Some(at) = self.faults.panic_at_step {
                if step >= at {
                    self.panic_fired = true;
                    panic!("fault-inject: stage `{stage}` panicked at step {step}");
                }
            }
        }
    }
}

/// A deterministic per-stage fault schedule.
///
/// Build one explicitly with the builder methods, or derive one from a
/// seed with [`FaultPlan::seeded`]. Apply it with
/// [`crate::Pipeline::inject_faults`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    entries: BTreeMap<String, StageFaults>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a panic in `stage` just before step `step`.
    pub fn panic_at(mut self, stage: impl Into<String>, step: u64) -> Self {
        self.entries.entry(stage.into()).or_default().panic_at_step = Some(step);
        self
    }

    /// Schedules a stall of `for_dur` in `stage` just before step `step`.
    pub fn stall_at(mut self, stage: impl Into<String>, step: u64, for_dur: Duration) -> Self {
        self.entries.entry(stage.into()).or_default().stall_at_step = Some((step, for_dur));
        self
    }

    /// Adds a fixed delay before every step of `stage`.
    pub fn slow_down(mut self, stage: impl Into<String>, per_step: Duration) -> Self {
        self.entries
            .entry(stage.into())
            .or_default()
            .slowdown_per_step = Some(per_step);
        self
    }

    /// Derives a random-looking but fully deterministic plan from `seed`.
    ///
    /// Each named stage independently draws one fault kind (or none): a
    /// panic or a stall at a step in `[1, max_step]`, a slowdown of
    /// 50–550 µs per step, or nothing. Stall durations are 1–32 ms. The
    /// same seed and stage list always produce an identical plan —
    /// [`FaultPlan::schedule`] renders byte-identically across runs.
    pub fn seeded(seed: u64, stages: &[&str], max_step: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let max_step = max_step.max(1);
        let mut plan = Self::new();
        for &stage in stages {
            let step = 1 + rng.next() % max_step;
            plan = match rng.next() % 4 {
                0 => plan.panic_at(stage, step),
                1 => plan.stall_at(stage, step, Duration::from_millis(1 + rng.next() % 32)),
                2 => plan.slow_down(stage, Duration::from_micros(50 + rng.next() % 500)),
                _ => plan, // this stage stays healthy
            };
        }
        plan
    }

    /// The faults scheduled for `stage`, if any.
    pub fn get(&self, stage: &str) -> Option<&StageFaults> {
        self.entries.get(stage)
    }

    /// Number of stages with at least one scheduled fault.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no stage has a scheduled fault.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A canonical one-line-per-stage rendering of the schedule.
    ///
    /// Stable across runs for the same plan: used to assert that seeded
    /// generation is byte-identical, and handy in failing-test output.
    pub fn schedule(&self) -> String {
        let mut out = String::new();
        for (stage, f) in &self.entries {
            out.push_str(stage);
            out.push(':');
            if let Some(at) = f.panic_at_step {
                out.push_str(&format!(" panic@{at}"));
            }
            if let Some((at, dur)) = f.stall_at_step {
                out.push_str(&format!(" stall@{at}/{}us", dur.as_micros()));
            }
            if let Some(delay) = f.slowdown_per_step {
                out.push_str(&format!(" slow/{}us", delay.as_micros()));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.schedule())
    }
}

/// A deterministic worker-kill schedule for serve-pool chaos testing.
///
/// Maps serve request ids to "kill the worker serving this request":
/// when a worker picks up a targeted request it unwinds mid-run (after
/// marking itself busy), exactly as if a caller closure had panicked
/// outside the `catch_unwind` fences. Kills are one-shot per request id
/// (the pool tracks fired kills), so a retried or respawn-rescued request
/// is not re-killed and chaos runs terminate.
///
/// Like [`FaultPlan`], plans are fully deterministic:
/// [`WorkerKillPlan::seeded`] derives the targeted ids from a single
/// `u64` seed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerKillPlan {
    requests: BTreeSet<u64>,
}

impl WorkerKillPlan {
    /// An empty plan (no kills).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a worker kill while serving request `id`.
    pub fn kill_request(mut self, id: u64) -> Self {
        self.requests.insert(id);
        self
    }

    /// Derives a deterministic plan from `seed` that kills the workers
    /// serving `kills` distinct request ids drawn from `[0, requests)`.
    pub fn seeded(seed: u64, requests: u64, kills: usize) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut plan = Self::new();
        if requests == 0 {
            return plan;
        }
        let kills = kills.min(requests as usize);
        while plan.requests.len() < kills {
            plan.requests.insert(rng.next() % requests);
        }
        plan
    }

    /// Whether request `id` is scheduled to kill its worker.
    pub fn targets(&self, id: u64) -> bool {
        self.requests.contains(&id)
    }

    /// Number of targeted request ids.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` if no kill is scheduled.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

/// SplitMix64: tiny, seedable, and statistically fine for schedules.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_faults_per_stage() {
        let plan = FaultPlan::new()
            .panic_at("f", 5)
            .stall_at("f", 2, Duration::from_millis(3))
            .slow_down("g", Duration::from_micros(100));
        let f = plan.get("f").unwrap();
        assert_eq!(f.panic_at_step, Some(5));
        assert_eq!(f.stall_at_step, Some((2, Duration::from_millis(3))));
        assert!(f.slowdown_per_step.is_none());
        assert!(plan.get("g").unwrap().stall_at_step.is_none());
        assert!(plan.get("h").is_none());
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
    }

    #[test]
    fn seeded_plans_are_byte_identical() {
        let stages = ["f", "g", "h"];
        for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
            let a = FaultPlan::seeded(seed, &stages, 100);
            let b = FaultPlan::seeded(seed, &stages, 100);
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(a.schedule(), b.schedule(), "seed {seed}");
        }
    }

    #[test]
    fn different_seeds_eventually_differ() {
        let stages = ["f", "g", "h"];
        let reference = FaultPlan::seeded(0, &stages, 100).schedule();
        assert!(
            (1..50u64).any(|s| FaultPlan::seeded(s, &stages, 100).schedule() != reference),
            "50 consecutive seeds produced identical schedules"
        );
    }

    #[test]
    fn armed_panic_is_one_shot() {
        let mut armed = ArmedFaults::new(StageFaults {
            panic_at_step: Some(3),
            ..Default::default()
        });
        armed.before_step("t", 0);
        armed.before_step("t", 2);
        let fired = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            armed.before_step("t", 3);
        }));
        assert!(fired.is_err(), "panic must fire at its step");
        // Disarmed: reaching the step again (post-restart) is fine.
        armed.before_step("t", 3);
        armed.before_step("t", 4);
    }

    #[test]
    fn armed_stall_fires_once_and_delays() {
        let mut armed = ArmedFaults::new(StageFaults {
            stall_at_step: Some((1, Duration::from_millis(15))),
            ..Default::default()
        });
        let start = std::time::Instant::now();
        armed.before_step("t", 0);
        assert!(start.elapsed() < Duration::from_millis(10));
        let start = std::time::Instant::now();
        armed.before_step("t", 1);
        assert!(start.elapsed() >= Duration::from_millis(14));
        let start = std::time::Instant::now();
        armed.before_step("t", 1);
        assert!(
            start.elapsed() < Duration::from_millis(10),
            "stall re-fired"
        );
    }

    #[test]
    fn schedule_rendering_is_stable_and_sorted() {
        let plan = FaultPlan::new()
            .slow_down("zeta", Duration::from_micros(10))
            .panic_at("alpha", 7);
        assert_eq!(plan.schedule(), "alpha: panic@7\nzeta: slow/10us\n");
        assert_eq!(plan.to_string(), plan.schedule());
    }

    #[test]
    fn empty_faults_detected() {
        assert!(StageFaults::default().is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn worker_kill_plans_are_deterministic_and_bounded() {
        assert!(WorkerKillPlan::new().is_empty());
        let plan = WorkerKillPlan::new().kill_request(3).kill_request(3);
        assert_eq!(plan.len(), 1);
        assert!(plan.targets(3) && !plan.targets(4));
        for seed in [0u64, 7, 0xA17] {
            let a = WorkerKillPlan::seeded(seed, 40, 5);
            let b = WorkerKillPlan::seeded(seed, 40, 5);
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(a.len(), 5);
        }
        // More kills than requests clamps; zero requests stays empty.
        assert_eq!(WorkerKillPlan::seeded(1, 3, 10).len(), 3);
        assert!(WorkerKillPlan::seeded(1, 0, 10).is_empty());
    }
}
