//! Synchronous pipelines for distributive stages (paper §III-C2).
//!
//! When a parent stage `f` is diffusive — its output evolves as
//! `F_i = F_{i-1} ♦ X_i` — and a child `g` is *distributive* over `♦`
//! (`g(F_0 ♦ X_1 ♦ … ♦ X_n) = g(F_0) ♦ g(X_1) ♦ … ♦ g(X_n)`), running `g`
//! asynchronously on whole snapshots re-processes every element the parent
//! has touched so far (paper Figure 8: re-capitalizing `"hel"` when only
//! `"l"` is new). A **synchronous pipeline** instead streams the *updates*
//! `X_i` to the child, which folds `g(X_i)` into its own output — no
//! redundant work (Figure 9).
//!
//! Unlike the asynchronous pipeline, updates must not be dropped: `f` may
//! not overwrite `X_i` before `g` consumes it. A bounded channel provides
//! exactly that backpressure. The channel is control-aware: a
//! backpressured producer or an idle consumer blocks without polling and
//! is woken immediately by new data, new space, a peer exit, or a stop.
//!
//! # Examples
//!
//! The paper's Figure 8/9 string example — a parent emits letters, the
//! child upper-cases each new letter only:
//!
//! ```
//! use anytime_core::{PipelineBuilder, StageOptions};
//! use std::time::Duration;
//!
//! let mut pb = PipelineBuilder::new();
//! let text = "hello".to_string();
//! let updates = pb.sync_source("f", text, 2, |input: &String, step| {
//!     input.chars().nth(step as usize)
//! });
//! let out = pb.sync_stage(
//!     "g",
//!     updates,
//!     String::new,
//!     |acc: &mut String, ch: char| acc.push(ch.to_ascii_uppercase()),
//!     StageOptions::default(),
//! );
//! let auto = pb.build().launch()?;
//! let snap = out.wait_final_timeout(Duration::from_secs(10))?;
//! assert_eq!(snap.value(), "HELLO");
//! auto.join()?;
//! # Ok::<(), anytime_core::CoreError>(())
//! ```

use crate::buffer::{self, BufferOptions, BufferReader, BufferWriter, DoubleBuffer};
use crate::channel::{bounded, Receiver, Sender};
use crate::control::ControlPoll;
use crate::error::CoreError;
use crate::pipeline::PipelineBuilder;
use crate::stage::{PollCx, StageEnd, StageOptions, StagePoll, StageRunner, MAX_STEPS_PER_SLICE};
use std::fmt;
use std::sync::Arc;

enum Msg<X> {
    Update(X),
    Final,
}

/// The consuming end of a synchronous update stream.
///
/// Deliberately not [`Clone`]: the paper's synchronous pipeline is a strict
/// one-producer/one-consumer relationship.
pub struct UpdateReceiver<X> {
    rx: Receiver<Msg<X>>,
}

impl<X> fmt::Debug for UpdateReceiver<X> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UpdateReceiver")
            .field("queued", &self.rx.len())
            .finish()
    }
}

/// Parent-side runner: emits updates `X_1, …, X_n` into the bounded channel.
/// Boxed update producer: `next(input, step)`.
type NextFn<I, X> = Box<dyn FnMut(&I, u64) -> Option<X> + Send>;
/// Boxed distributive fold.
type FoldFn<G, X> = Box<dyn FnMut(&mut G, X) + Send>;

struct UpdateSourceRunner<I, X> {
    name: String,
    input: Arc<I>,
    next: NextFn<I, X>,
    tx: Sender<Msg<X>>,
    /// Updates emitted so far; persists across poll slices.
    step: u64,
    /// A message the channel bounced back (queue full), to retry before
    /// producing the next one.
    stalled: Option<Msg<X>>,
}

impl<I, X> StageRunner for UpdateSourceRunner<I, X>
where
    I: Send + Sync + 'static,
    X: Send + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, cx: &mut PollCx<'_>) -> StagePoll {
        // Subscribe before checking any predicate: a queue-space or stop
        // event after this point re-polls the task.
        self.tx.subscribe_target(cx.wake);
        cx.ctl.subscribe_target(cx.wake);
        let mut sent = 0u64;
        loop {
            match cx.ctl.poll_checkpoint() {
                ControlPoll::Running => {}
                ControlPoll::Paused => return StagePoll::Pending,
                ControlPoll::Stopped => return StagePoll::Ready(Ok(StageEnd::Stopped)),
            }
            let msg = match self.stalled.take() {
                Some(m) => m,
                None => match (self.next)(&self.input, self.step) {
                    Some(update) => Msg::Update(update),
                    None => Msg::Final,
                },
            };
            let ends_stream = matches!(msg, Msg::Final);
            match self.tx.poll_send(msg, cx.ctl) {
                Ok(None) => {
                    if ends_stream {
                        return StagePoll::Ready(Ok(StageEnd::Final));
                    }
                    self.step += 1;
                    sent += 1;
                    // Each delivered update is this stage's publish point.
                    if sent >= cx.budget || sent >= MAX_STEPS_PER_SLICE {
                        return StagePoll::Yielded;
                    }
                }
                Ok(Some(m)) => {
                    // Backpressured: hold the message and wait for space.
                    self.stalled = Some(m);
                    return StagePoll::Pending;
                }
                Err(CoreError::Stopped) => return StagePoll::Ready(Ok(StageEnd::Stopped)),
                Err(e) => return StagePoll::Ready(Err(e)),
            }
        }
    }
}

/// Child-side runner: folds each received update into its output.
struct DistributiveRunner<X, G> {
    name: String,
    rx: Receiver<Msg<X>>,
    init: Box<dyn FnMut() -> G + Send>,
    fold: FoldFn<G, X>,
    writer: BufferWriter<G>,
    publish_every: u64,
    /// The running fold `g(F_0) ♦ g(X_1) ♦ …`, initialized lazily on the
    /// first poll slice; persists across slices.
    out: Option<G>,
    steps: u64,
    published_at: u64,
    /// Publications recycle the two-versions-old allocation instead of
    /// cloning the fold state fresh each time.
    db: DoubleBuffer<G>,
    /// Set while a poll slice runs; still set on entry means the previous
    /// slice panicked mid-fold and the accumulator is untrustworthy.
    dirty: bool,
}

impl<X, G> DistributiveRunner<X, G>
where
    X: Send + 'static,
    G: Clone + Send + Sync + 'static,
{
    /// Publishes the partial fold accumulated so far (a valid approximate
    /// output — interruptibility) before reporting a stop.
    fn stop_with_partial(&mut self) -> StagePoll {
        if self.steps > self.published_at {
            if let Some(out) = &self.out {
                self.db.publish_from(&mut self.writer, out, self.steps);
                self.published_at = self.steps;
            }
        }
        StagePoll::Ready(Ok(StageEnd::Stopped))
    }
}

impl<X, G> StageRunner for DistributiveRunner<X, G>
where
    X: Send + 'static,
    G: Clone + Send + Sync + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, cx: &mut PollCx<'_>) -> StagePoll {
        if self.writer.is_final() {
            return StagePoll::Ready(Ok(StageEnd::Final));
        }
        if self.writer.is_terminal() {
            return StagePoll::Ready(Ok(StageEnd::Degraded));
        }
        if std::mem::replace(&mut self.dirty, true) {
            // The previous slice panicked mid-fold. Updates it consumed are
            // gone (the channel cannot rewind), so restart the fold from
            // scratch — the same recovery the dedicated-thread driver made
            // when it was re-driven after a panic.
            self.out = None;
            self.steps = 0;
            self.published_at = 0;
        }
        self.rx.subscribe_target(cx.wake);
        cx.ctl.subscribe_target(cx.wake);
        let granularity = self.publish_every.max(1);
        let mut pubs = 0u64;
        let mut slice_steps = 0u64;
        let verdict = loop {
            match cx.ctl.poll_checkpoint() {
                ControlPoll::Running => {}
                ControlPoll::Paused => break StagePoll::Pending,
                ControlPoll::Stopped => break self.stop_with_partial(),
            }
            match self.rx.poll_recv(cx.ctl) {
                Ok(Some(Msg::Update(x))) => {
                    if self.out.is_none() {
                        self.out = Some((self.init)());
                    }
                    let out = self.out.as_mut().expect("fold state just initialized");
                    (self.fold)(out, x);
                    self.steps += 1;
                    slice_steps += 1;
                    if self.steps.is_multiple_of(granularity) {
                        self.db.publish_from(&mut self.writer, out, self.steps);
                        self.published_at = self.steps;
                        pubs += 1;
                        if pubs >= cx.budget {
                            break StagePoll::Yielded;
                        }
                    } else if slice_steps >= MAX_STEPS_PER_SLICE {
                        // Coarse granularity: cap the slice so one stage
                        // cannot monopolize a worker between publishes.
                        break StagePoll::Yielded;
                    }
                }
                Ok(Some(Msg::Final)) => {
                    if self.out.is_none() {
                        self.out = Some((self.init)());
                    }
                    let out = self.out.as_ref().expect("fold state just initialized");
                    self.db.publish_final_from(&mut self.writer, out, self.steps);
                    break StagePoll::Ready(Ok(StageEnd::Final));
                }
                Ok(None) => break StagePoll::Pending,
                Err(CoreError::Stopped) => break self.stop_with_partial(),
                Err(CoreError::ChannelClosed) => {
                    // The producer died without sending `Final`.
                    break StagePoll::Ready(Err(CoreError::SourceClosed {
                        buffer: self.name.clone(),
                    }));
                }
                Err(e) => break StagePoll::Ready(Err(e)),
            }
        };
        self.dirty = false;
        verdict
    }

    fn output_control(&self) -> Option<std::sync::Arc<dyn crate::buffer::BufferControl>> {
        Some(self.writer.control_handle())
    }

    fn steps_completed(&self) -> u64 {
        // The fold restarts from scratch if re-polled after a panic; live
        // progress is in the buffer, so report the published step count.
        self.writer.latest().map_or(0, |snap| snap.steps())
    }
}

impl PipelineBuilder {
    /// Adds a synchronous update source: a diffusive parent that exposes its
    /// updates `X_i` instead of whole snapshots.
    ///
    /// `next(input, step)` returns update `X_{step+1}`, or `None` once all
    /// updates have been emitted. `capacity` bounds the in-flight updates;
    /// the source blocks when the child falls behind (the paper's
    /// "f must not overwrite `X_i` before `g(X_i)` begins executing").
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn sync_source<I, X>(
        &mut self,
        name: impl Into<String>,
        input: I,
        capacity: usize,
        next: impl FnMut(&I, u64) -> Option<X> + Send + 'static,
    ) -> UpdateReceiver<X>
    where
        I: Send + Sync + 'static,
        X: Send + 'static,
    {
        assert!(capacity > 0, "update channel needs capacity >= 1");
        let (tx, rx) = bounded(capacity);
        self.push_runner(Box::new(UpdateSourceRunner {
            name: name.into(),
            input: Arc::new(input),
            next: Box::new(next),
            tx,
            step: 0,
            stalled: None,
        }));
        UpdateReceiver { rx }
    }

    /// Adds a distributive child stage folding synchronous updates.
    ///
    /// `init` builds `g(F_0)`; `fold(out, x)` performs
    /// `out := out ♦ g(x)` for one update. Every update contributes usefully
    /// to the final output — none of the re-processing an asynchronous
    /// composition would do.
    pub fn sync_stage<X, G>(
        &mut self,
        name: impl Into<String>,
        updates: UpdateReceiver<X>,
        init: impl FnMut() -> G + Send + 'static,
        fold: impl FnMut(&mut G, X) + Send + 'static,
        opts: StageOptions,
    ) -> BufferReader<G>
    where
        X: Send + 'static,
        G: Clone + Send + Sync + 'static,
    {
        let name = name.into();
        let (writer, reader) = buffer::versioned_with(
            &name,
            BufferOptions {
                keep_history: opts.keep_history,
            },
        );
        self.push_runner(Box::new(DistributiveRunner {
            name,
            rx: updates.rx,
            init: Box::new(init),
            fold: Box::new(fold),
            writer,
            publish_every: opts.publish_every,
            out: None,
            steps: 0,
            published_at: 0,
            db: DoubleBuffer::new(),
            dirty: false,
        }));
        reader
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    #[test]
    fn updates_fold_into_final_output() {
        let mut pb = PipelineBuilder::new();
        let updates = pb.sync_source("f", 10u64, 4, |n: &u64, step| {
            (step < *n).then_some(step + 1)
        });
        let out = pb.sync_stage(
            "g",
            updates,
            || 0u64,
            |acc: &mut u64, x: u64| *acc += x,
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        let snap = out.wait_final_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(*snap.value(), 55);
        let report = auto.join().unwrap();
        assert!(report.all_final());
    }

    #[test]
    fn no_redundant_work_each_update_processed_once() {
        let calls = Arc::new(AtomicU64::new(0));
        let calls2 = Arc::clone(&calls);
        let mut pb = PipelineBuilder::new();
        let updates = pb.sync_source("f", 100u64, 2, |n: &u64, step| (step < *n).then_some(step));
        let out = pb.sync_stage(
            "g",
            updates,
            || 0u64,
            move |acc: &mut u64, _x: u64| {
                calls2.fetch_add(1, Ordering::Relaxed); // relaxed: test counter, not synchronization
                *acc += 1;
            },
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        out.wait_final_timeout(Duration::from_secs(10)).unwrap();
        auto.join().unwrap();
        // The distributive property: exactly one fold per update, even
        // though the parent published 100 intermediate outputs.
        assert_eq!(calls.load(Ordering::Relaxed), 100); // relaxed: test counter
    }

    #[test]
    fn backpressure_bounds_inflight_updates() {
        // A slow consumer must throttle the producer through the bounded
        // channel: the producer may run at most `capacity + 1` updates
        // ahead of the consumer.
        let produced = Arc::new(AtomicU64::new(0));
        let consumed = Arc::new(AtomicU64::new(0));
        let p2 = Arc::clone(&produced);
        let c2 = Arc::clone(&consumed);
        let capacity = 2u64;
        let mut pb = PipelineBuilder::new();
        let updates = pb.sync_source("f", 50u64, capacity as usize, move |n: &u64, step| {
            if step < *n {
                p2.fetch_add(1, Ordering::SeqCst);
                let ahead = p2.load(Ordering::SeqCst) - c2.load(Ordering::SeqCst);
                assert!(
                    ahead <= capacity + 2,
                    "producer ran {ahead} updates ahead of consumer"
                );
                Some(step)
            } else {
                None
            }
        });
        let c3 = Arc::clone(&consumed);
        let out = pb.sync_stage(
            "g",
            updates,
            || 0u64,
            move |acc: &mut u64, _x| {
                std::thread::sleep(Duration::from_micros(500));
                c3.fetch_add(1, Ordering::SeqCst);
                *acc += 1;
            },
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        let snap = out.wait_final_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(*snap.value(), 50);
        auto.join().unwrap();
    }

    #[test]
    fn stop_interrupts_both_sides() {
        let mut pb = PipelineBuilder::new();
        let updates = pb.sync_source("f", u64::MAX, 2, |_: &u64, step| Some(step));
        let out = pb.sync_stage(
            "g",
            updates,
            || 0u64,
            |acc: &mut u64, _x| {
                std::thread::sleep(Duration::from_micros(200));
                *acc += 1;
            },
            StageOptions::with_publish_every(8),
        );
        let auto = pb.build().launch().unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let report = auto.stop_and_join().unwrap();
        assert!(!report.all_final());
        // The interrupted child still published a valid partial fold.
        assert!(*out.latest().unwrap().value() > 0);
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_panics() {
        let mut pb = PipelineBuilder::new();
        let _ = pb.sync_source("f", 1u64, 0, |_: &u64, _| Some(0u64));
    }

    #[test]
    fn empty_update_stream_finalizes_seed() {
        let mut pb = PipelineBuilder::new();
        let updates = pb.sync_source("f", 0u64, 1, |n: &u64, step| (step < *n).then_some(step));
        let out = pb.sync_stage(
            "g",
            updates,
            || 7u64,
            |acc: &mut u64, x| *acc += x,
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        let snap = out.wait_final_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(*snap.value(), 7);
        assert_eq!(snap.steps(), 0);
        auto.join().unwrap();
    }
}
