use crate::buffer::{self, BufferControl, BufferOptions, BufferReader, BufferWriter};
use crate::control::ControlToken;
use crate::error::{CoreError, Result};
use crate::executor::Automaton;
use crate::notify::WaitSet;
use crate::stage::{AnytimeBody, InputFeed, StageEnd, StageNode, StageOptions, StageRunner};
use crate::trace::Recorder;
use crate::version::Version;
use std::fmt;
use std::sync::Arc;

/// Builds an anytime automaton as a directed acyclic graph of stages
/// (paper Figure 1).
///
/// Stages are added bottom-up: [`PipelineBuilder::source`] creates stages
/// that own their input, [`PipelineBuilder::stage`] creates stages that
/// consume another stage's output buffer, and [`PipelineBuilder::join2`]
/// merges two buffers for multi-parent stages (like stage `i` in the
/// paper's example, which depends on both `g` and `h`). Because a stage can
/// only reference readers of already-added stages, the graph is acyclic by
/// construction.
///
/// Fan-out needs no special node: clone the [`BufferReader`] and hand it to
/// several dependent stages.
///
/// # Examples
///
/// The paper's `f → (g, h) → i` diamond:
///
/// ```
/// use anytime_core::{PipelineBuilder, Precise, StageOptions};
/// use std::sync::Arc;
/// use std::time::Duration;
///
/// let mut pb = PipelineBuilder::new();
/// let f = pb.source("f", 10u64, Precise::new(|i: &u64| i + 1), StageOptions::default());
/// let g = pb.stage("g", &f, Precise::new(|i: &u64| i * 2), StageOptions::default());
/// let h = pb.stage("h", &f, Precise::new(|i: &u64| i * 3), StageOptions::default());
/// let gh = pb.join2("gh", &g, &h);
/// let i = pb.stage(
///     "i",
///     &gh,
///     Precise::new(|(g, h): &(Arc<u64>, Arc<u64>)| **g + **h),
///     StageOptions::default(),
/// );
/// let auto = pb.build().launch()?;
/// let out = i.wait_final_timeout(Duration::from_secs(10))?;
/// assert_eq!(*out.value(), 22 + 33);
/// auto.join()?;
/// # Ok::<(), anytime_core::CoreError>(())
/// ```
pub struct PipelineBuilder {
    runners: Vec<Box<dyn StageRunner>>,
    recorder: Recorder,
}

impl PipelineBuilder {
    /// Creates an empty pipeline builder (tracing disabled).
    pub fn new() -> Self {
        Self::traced(Recorder::disabled())
    }

    /// Creates an empty pipeline builder whose stages record trace events
    /// on `recorder`: every stage buffer created by this builder emits
    /// publish/observe events, and the launched [`Automaton`] emits
    /// restart/stall/degrade events.
    ///
    /// The recorder must be supplied up front (not retrofitted) because
    /// each stage's output buffer captures it at creation.
    pub fn traced(recorder: Recorder) -> Self {
        Self {
            runners: Vec::new(),
            recorder,
        }
    }

    /// The recorder stages of this builder report to (disabled unless the
    /// builder was created with [`PipelineBuilder::traced`]).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Number of stages added so far.
    pub fn len(&self) -> usize {
        self.runners.len()
    }

    /// `true` if no stages have been added.
    pub fn is_empty(&self) -> bool {
        self.runners.is_empty()
    }

    /// Adds a source stage owning its input data.
    ///
    /// The input is implicitly final, so the stage runs its anytime steps
    /// once and publishes its precise output at the end.
    pub fn source<B>(
        &mut self,
        name: impl Into<String>,
        input: B::Input,
        body: B,
        opts: StageOptions,
    ) -> BufferReader<B::Output>
    where
        B: AnytimeBody + 'static,
    {
        let name = name.into();
        let (writer, reader) = self.make_buffer::<B::Output>(&name, opts);
        self.runners.push(Box::new(StageNode::new(
            name,
            body,
            InputFeed::Owned(Arc::new(input)),
            writer,
            opts,
        )));
        reader
    }

    /// Adds a dependent stage consuming `input`'s buffer.
    ///
    /// The stage re-runs on each observed input version (per its
    /// [`StageOptions::restart`] policy) and publishes its own precise
    /// output after processing the input's final version — the asynchronous
    /// pipeline of paper §III-C1.
    pub fn stage<B>(
        &mut self,
        name: impl Into<String>,
        input: &BufferReader<B::Input>,
        body: B,
        opts: StageOptions,
    ) -> BufferReader<B::Output>
    where
        B: AnytimeBody + 'static,
    {
        let name = name.into();
        let (writer, reader) = self.make_buffer::<B::Output>(&name, opts);
        self.runners.push(Box::new(StageNode::new(
            name,
            body,
            InputFeed::Upstream(input.clone()),
            writer,
            opts,
        )));
        reader
    }

    /// Adds a join node combining the latest versions of two buffers.
    ///
    /// The join publishes a new `(Arc<A>, Arc<B>)` pair whenever either
    /// parent publishes, and its final version once both parents are final.
    /// Values are shared, not copied.
    pub fn join2<A, B>(
        &mut self,
        name: impl Into<String>,
        a: &BufferReader<A>,
        b: &BufferReader<B>,
    ) -> BufferReader<(Arc<A>, Arc<B>)>
    where
        A: Send + Sync + 'static,
        B: Send + Sync + 'static,
    {
        let name = name.into();
        let (writer, reader) = self.make_buffer::<(Arc<A>, Arc<B>)>(&name, StageOptions::default());
        self.runners.push(Box::new(JoinRunner {
            name,
            a: a.clone(),
            b: b.clone(),
            writer,
        }));
        reader
    }

    /// Adds a pre-built runner (used by the synchronous-pipeline module).
    pub(crate) fn push_runner(&mut self, runner: Box<dyn StageRunner>) {
        self.runners.push(runner);
    }

    /// Creates an output buffer for a stage, honoring history options.
    fn make_buffer<T>(
        &mut self,
        name: &str,
        opts: StageOptions,
    ) -> (BufferWriter<T>, BufferReader<T>) {
        buffer::versioned_traced(
            name,
            BufferOptions {
                keep_history: opts.keep_history,
            },
            &self.recorder,
        )
    }

    /// Finishes construction.
    pub fn build(self) -> Pipeline {
        Pipeline {
            runners: self.runners,
            fail_fast: false,
            recorder: self.recorder,
        }
    }
}

impl Default for PipelineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for PipelineBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PipelineBuilder")
            .field("stages", &self.runners.len())
            .finish()
    }
}

/// A fully constructed (but not yet running) anytime automaton pipeline.
pub struct Pipeline {
    pub(crate) runners: Vec<Box<dyn StageRunner>>,
    pub(crate) fail_fast: bool,
    pub(crate) recorder: Recorder,
}

impl Pipeline {
    /// Number of stages in the pipeline.
    pub fn len(&self) -> usize {
        self.runners.len()
    }

    /// `true` if the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.runners.is_empty()
    }

    /// The stage names, in pipeline order.
    ///
    /// Useful for deriving seeded `FaultPlan`s (or other per-stage
    /// configuration) from a built pipeline without repeating the name
    /// list by hand.
    pub fn stage_names(&self) -> Vec<&str> {
        self.runners.iter().map(|r| r.name()).collect()
    }

    /// Makes the first *permanently* failed stage stop the whole automaton
    /// ([`ControlToken::stop`]) instead of letting healthy stages run on.
    ///
    /// Failures absorbed by supervision — successful restarts, degradations
    /// with a published approximation — do not trigger the stop; only a
    /// failure that would surface as an error from
    /// [`Automaton::join`](crate::Automaton::join) does. Every stage's
    /// latest published output remains readable, per the anytime contract.
    pub fn fail_fast(mut self) -> Self {
        self.fail_fast = true;
        self
    }

    /// Arms the faults in `plan` on the matching stages (chaos testing).
    ///
    /// Stages not named in the plan are untouched; plan entries naming
    /// unknown stages are ignored. See [`crate::FaultPlan`].
    #[cfg(feature = "fault-inject")]
    pub fn inject_faults(mut self, plan: &crate::faultinject::FaultPlan) -> Self {
        for runner in &mut self.runners {
            if let Some(faults) = plan.get(runner.name()) {
                runner.inject_faults(faults.clone());
            }
        }
        self
    }

    /// Spawns one driver thread per stage and starts executing.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an empty pipeline.
    pub fn launch(self) -> Result<Automaton> {
        self.launch_with(ControlToken::new())
    }

    /// Launches with an externally owned control token (e.g. one shared
    /// with other machinery that may stop the automaton).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an empty pipeline.
    pub fn launch_with(self, ctl: ControlToken) -> Result<Automaton> {
        if self.runners.is_empty() {
            return Err(CoreError::InvalidConfig(
                "pipeline has no stages".to_string(),
            ));
        }
        Automaton::spawn(self.runners, ctl, self.fail_fast, self.recorder)
    }

    /// The recorder this pipeline's stages report trace events to.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }
}

impl fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pipeline")
            .field("stages", &self.runners.len())
            .finish()
    }
}

/// Runner joining two parent buffers into a tuple buffer.
struct JoinRunner<A, B> {
    name: String,
    a: BufferReader<A>,
    b: BufferReader<B>,
    writer: BufferWriter<(Arc<A>, Arc<B>)>,
}

impl<A, B> StageRunner for JoinRunner<A, B>
where
    A: Send + Sync + 'static,
    B: Send + Sync + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn drive(&mut self, ctl: &ControlToken) -> Result<StageEnd> {
        // Restart safety: nothing to do once the output settled.
        if self.writer.is_final() {
            return Ok(StageEnd::Final);
        }
        if self.writer.is_terminal() {
            return Ok(StageEnd::Degraded);
        }
        // One wait set multiplexed over both parent buffers and the
        // control token: any parent publication/close or any control
        // transition wakes the join immediately — no polling.
        let ws = WaitSet::new();
        let _watch_a = self.a.subscribe(&ws);
        let _watch_b = self.b.subscribe(&ws);
        let _watch_ctl = ctl.subscribe(&ws);
        let mut last: Option<(Version, Version)> = None;
        let mut steps = 0u64;
        // A crash-restarted join recounts pairs from zero, so the
        // Property 2 steps floor restarts with it.
        self.writer.begin_run(0);
        loop {
            let seen = ws.epoch();
            match ctl.checkpoint() {
                Ok(()) => {}
                Err(CoreError::Stopped) => return Ok(StageEnd::Stopped),
                Err(e) => return Err(e),
            }
            let (sa, sb) = (self.a.latest(), self.b.latest());
            if let (Some(sa), Some(sb)) = (&sa, &sb) {
                let pair = (sa.version(), sb.version());
                if last != Some(pair) {
                    steps += 1;
                    let value = (sa.value_arc(), sb.value_arc());
                    if sa.is_terminal() && sb.is_terminal() {
                        // A degraded parent taints the joined pair: the
                        // approximation flag propagates downstream.
                        if sa.is_degraded() || sb.is_degraded() {
                            self.writer.publish_degraded(value, steps);
                            return Ok(StageEnd::Degraded);
                        }
                        self.writer.publish_final(value, steps);
                        return Ok(StageEnd::Final);
                    }
                    self.writer.publish(value, steps);
                    last = Some(pair);
                    continue;
                }
            }
            // A parent that exited without a terminal version will never
            // satisfy the join; report it instead of waiting forever.
            if self.a.is_closed() && !self.a.is_terminal() {
                return Err(CoreError::SourceClosed {
                    buffer: self.a.name().to_string(),
                });
            }
            if self.b.is_closed() && !self.b.is_terminal() {
                return Err(CoreError::SourceClosed {
                    buffer: self.b.name().to_string(),
                });
            }
            ws.wait(seen);
        }
    }

    fn output_control(&self) -> Option<Arc<dyn BufferControl>> {
        Some(self.writer.control_handle())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diffusive::Diffusive;
    use crate::precise::Precise;
    use crate::stage::StepOutcome;
    use std::time::Duration;

    #[test]
    fn builder_counts_stages() {
        let mut pb = PipelineBuilder::new();
        assert!(pb.is_empty());
        let f = pb.source(
            "f",
            1u64,
            Precise::new(|i: &u64| *i),
            StageOptions::default(),
        );
        let _g = pb.stage("g", &f, Precise::new(|i: &u64| *i), StageOptions::default());
        assert_eq!(pb.len(), 2);
        let p = pb.build();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn empty_pipeline_rejected() {
        let p = PipelineBuilder::new().build();
        assert!(matches!(p.launch(), Err(CoreError::InvalidConfig(_))));
    }

    #[test]
    fn linear_chain_reaches_precise_output() {
        // f counts to 100 diffusively; g doubles whatever it sees.
        let mut pb = PipelineBuilder::new();
        let f = pb.source(
            "f",
            (),
            Diffusive::new(
                |_: &()| 0u64,
                |_: &(), out: &mut u64, step| {
                    *out += 1;
                    if step + 1 == 100 {
                        StepOutcome::Done
                    } else {
                        StepOutcome::Continue
                    }
                },
            ),
            StageOptions::with_publish_every(10),
        );
        let g = pb.stage(
            "g",
            &f,
            Precise::new(|i: &u64| i * 2),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        let out = g.wait_final_timeout(Duration::from_secs(20)).unwrap();
        assert_eq!(*out.value(), 200);
        assert!(out.is_final());
        let report = auto.join().unwrap();
        assert!(report.stages.iter().all(|s| s.end == StageEnd::Final));
    }

    #[test]
    fn join2_combines_latest_and_finalizes() {
        let mut pb = PipelineBuilder::new();
        let a = pb.source(
            "a",
            3u64,
            Precise::new(|i: &u64| *i),
            StageOptions::default(),
        );
        let b = pb.source(
            "b",
            4u64,
            Precise::new(|i: &u64| *i),
            StageOptions::default(),
        );
        let j = pb.join2("j", &a, &b);
        let s = pb.stage(
            "s",
            &j,
            Precise::new(|(a, b): &(Arc<u64>, Arc<u64>)| **a * **b),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        let out = s.wait_final_timeout(Duration::from_secs(20)).unwrap();
        assert_eq!(*out.value(), 12);
        auto.join().unwrap();
    }

    #[test]
    fn join2_propagates_degraded_parent() {
        use crate::supervisor::Supervision;
        let mut pb = PipelineBuilder::new();
        // Parent `a` publishes two approximations then dies; Degrade seals
        // its buffer, and the join must taint its own terminal pair.
        let a = pb.source(
            "a",
            (),
            Diffusive::new(
                |_: &()| 0u64,
                |_: &(), out: &mut u64, step| {
                    if step == 2 {
                        panic!("parent died");
                    }
                    *out += 1;
                    StepOutcome::Continue
                },
            ),
            StageOptions::default().supervise(Supervision::degrade()),
        );
        let b = pb.source(
            "b",
            4u64,
            Precise::new(|i: &u64| *i),
            StageOptions::default(),
        );
        let j = pb.join2("j", &a, &b);
        let auto = pb.build().launch().unwrap();
        let out = j.wait_final_timeout(Duration::from_secs(20)).unwrap();
        assert!(out.is_degraded());
        assert!(!out.is_final());
        let (ja, jb) = out.value();
        assert_eq!(**ja, 2);
        assert_eq!(**jb, 4);
        let report = auto.join().unwrap();
        assert!(report.any_degraded());
        assert_eq!(report.faults.degradations, 1);
    }

    #[test]
    fn fan_out_shares_one_buffer() {
        let mut pb = PipelineBuilder::new();
        let f = pb.source(
            "f",
            5u64,
            Precise::new(|i: &u64| *i),
            StageOptions::default(),
        );
        let g = pb.stage(
            "g",
            &f,
            Precise::new(|i: &u64| i + 1),
            StageOptions::default(),
        );
        let h = pb.stage(
            "h",
            &f,
            Precise::new(|i: &u64| i + 2),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        assert_eq!(
            *g.wait_final_timeout(Duration::from_secs(20))
                .unwrap()
                .value(),
            6
        );
        assert_eq!(
            *h.wait_final_timeout(Duration::from_secs(20))
                .unwrap()
                .value(),
            7
        );
        auto.join().unwrap();
    }
}
