use crate::buffer::{self, BufferControl, BufferOptions, BufferReader, BufferWriter};
use crate::control::{ControlPoll, ControlToken};
use crate::error::{CoreError, Result};
use crate::executor::Automaton;
use crate::runtime::RuntimeHandle;
use crate::scheduler::AllocPolicy;
use crate::stage::{
    AnytimeBody, InputFeed, PollCx, StageEnd, StageNode, StageOptions, StagePoll, StageRunner,
};
use crate::trace::Recorder;
use crate::version::Version;
use std::fmt;
use std::sync::Arc;

/// Builds an anytime automaton as a directed acyclic graph of stages
/// (paper Figure 1).
///
/// Stages are added bottom-up: [`PipelineBuilder::source`] creates stages
/// that own their input, [`PipelineBuilder::stage`] creates stages that
/// consume another stage's output buffer, and [`PipelineBuilder::join2`]
/// merges two buffers for multi-parent stages (like stage `i` in the
/// paper's example, which depends on both `g` and `h`). Because a stage can
/// only reference readers of already-added stages, the graph is acyclic by
/// construction.
///
/// Fan-out needs no special node: clone the [`BufferReader`] and hand it to
/// several dependent stages.
///
/// # Examples
///
/// The paper's `f → (g, h) → i` diamond:
///
/// ```
/// use anytime_core::{PipelineBuilder, Precise, StageOptions};
/// use std::sync::Arc;
/// use std::time::Duration;
///
/// let mut pb = PipelineBuilder::new();
/// let f = pb.source("f", 10u64, Precise::new(|i: &u64| i + 1), StageOptions::default());
/// let g = pb.stage("g", &f, Precise::new(|i: &u64| i * 2), StageOptions::default());
/// let h = pb.stage("h", &f, Precise::new(|i: &u64| i * 3), StageOptions::default());
/// let gh = pb.join2("gh", &g, &h);
/// let i = pb.stage(
///     "i",
///     &gh,
///     Precise::new(|(g, h): &(Arc<u64>, Arc<u64>)| **g + **h),
///     StageOptions::default(),
/// );
/// let auto = pb.build().launch()?;
/// let out = i.wait_final_timeout(Duration::from_secs(10))?;
/// assert_eq!(*out.value(), 22 + 33);
/// auto.join()?;
/// # Ok::<(), anytime_core::CoreError>(())
/// ```
pub struct PipelineBuilder {
    runners: Vec<Box<dyn StageRunner>>,
    recorder: Recorder,
    runtime: Option<RuntimeHandle>,
    fail_fast: bool,
    schedule: Option<(AllocPolicy, Vec<f64>)>,
    #[cfg(feature = "fault-inject")]
    fault_plan: Option<crate::faultinject::FaultPlan>,
}

impl PipelineBuilder {
    /// Creates an empty pipeline builder (tracing disabled, stages
    /// scheduled on the process-wide shared runtime).
    pub fn new() -> Self {
        Self {
            runners: Vec::new(),
            recorder: Recorder::disabled(),
            runtime: None,
            fail_fast: false,
            schedule: None,
            #[cfg(feature = "fault-inject")]
            fault_plan: None,
        }
    }

    /// Records trace events on `recorder`: every stage buffer created by
    /// this builder emits publish/observe events, and the launched
    /// [`Automaton`] emits restart/stall/degrade events.
    ///
    /// Must be called **before any stage is added** (each stage's output
    /// buffer captures the recorder at creation — it cannot be
    /// retrofitted), and panics otherwise.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        assert!(
            self.runners.is_empty(),
            "with_recorder must be called before any stage is added: \
             stage buffers capture the recorder at creation"
        );
        self.recorder = recorder;
        self
    }

    /// Schedules this pipeline's stage tasks on `runtime` instead of the
    /// process-wide shared runtime ([`RuntimeHandle::global`]).
    pub fn with_runtime(mut self, runtime: RuntimeHandle) -> Self {
        self.runtime = Some(runtime);
        self
    }

    /// Makes the first *permanently* failed stage stop the whole automaton
    /// ([`ControlToken::stop`]) instead of letting healthy stages run on.
    ///
    /// Failures absorbed by supervision — successful restarts, degradations
    /// with a published approximation — do not trigger the stop; only a
    /// failure that would surface as an error from
    /// [`Automaton::join`](crate::Automaton::join) does. Every stage's
    /// latest published output remains readable, per the anytime contract.
    pub fn with_fail_fast(mut self) -> Self {
        self.fail_fast = true;
        self
    }

    /// Maps a [`scheduler`](crate::scheduler) thread-allocation policy
    /// onto per-stage task *credits*: the plan `allocate(policy, weights,
    /// workers)` is computed against the runtime's worker count at launch,
    /// and a stage allotted `k` threads gets `k` publish slices per
    /// scheduling quantum instead of `k` OS threads. `weights` must have
    /// one entry per stage, in the order stages were added (checked at
    /// launch).
    pub fn with_schedule(mut self, policy: AllocPolicy, weights: Vec<f64>) -> Self {
        self.schedule = Some((policy, weights));
        self
    }

    /// Arms the faults in `plan` on the matching stages at build time
    /// (chaos testing).
    ///
    /// Stages not named in the plan are untouched; plan entries naming
    /// unknown stages are ignored. See [`crate::FaultPlan`].
    #[cfg(feature = "fault-inject")]
    pub fn with_faults(mut self, plan: crate::faultinject::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Creates an empty pipeline builder whose stages record trace events
    /// on `recorder`.
    #[deprecated(
        since = "0.2.0",
        note = "use `PipelineBuilder::new().with_recorder(recorder)` — one entry \
                point, chainable configuration (see DESIGN.md §15)"
    )]
    pub fn traced(recorder: Recorder) -> Self {
        Self::new().with_recorder(recorder)
    }

    /// The recorder stages of this builder report to (disabled unless one
    /// was supplied via [`PipelineBuilder::with_recorder`]).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Number of stages added so far.
    pub fn len(&self) -> usize {
        self.runners.len()
    }

    /// `true` if no stages have been added.
    pub fn is_empty(&self) -> bool {
        self.runners.is_empty()
    }

    /// Adds a source stage owning its input data.
    ///
    /// The input is implicitly final, so the stage runs its anytime steps
    /// once and publishes its precise output at the end.
    pub fn source<B>(
        &mut self,
        name: impl Into<String>,
        input: B::Input,
        body: B,
        opts: StageOptions,
    ) -> BufferReader<B::Output>
    where
        B: AnytimeBody + 'static,
    {
        let name = name.into();
        let (writer, reader) = self.make_buffer::<B::Output>(&name, opts);
        self.runners.push(Box::new(StageNode::new(
            name,
            body,
            InputFeed::Owned(Arc::new(input)),
            writer,
            opts,
        )));
        reader
    }

    /// Adds a dependent stage consuming `input`'s buffer.
    ///
    /// The stage re-runs on each observed input version (per its
    /// [`StageOptions::restart`] policy) and publishes its own precise
    /// output after processing the input's final version — the asynchronous
    /// pipeline of paper §III-C1.
    pub fn stage<B>(
        &mut self,
        name: impl Into<String>,
        input: &BufferReader<B::Input>,
        body: B,
        opts: StageOptions,
    ) -> BufferReader<B::Output>
    where
        B: AnytimeBody + 'static,
    {
        let name = name.into();
        let (writer, reader) = self.make_buffer::<B::Output>(&name, opts);
        self.runners.push(Box::new(StageNode::new(
            name,
            body,
            InputFeed::Upstream(input.clone()),
            writer,
            opts,
        )));
        reader
    }

    /// Adds a join node combining the latest versions of two buffers.
    ///
    /// The join publishes a new `(Arc<A>, Arc<B>)` pair whenever either
    /// parent publishes, and its final version once both parents are final.
    /// Values are shared, not copied.
    pub fn join2<A, B>(
        &mut self,
        name: impl Into<String>,
        a: &BufferReader<A>,
        b: &BufferReader<B>,
    ) -> BufferReader<(Arc<A>, Arc<B>)>
    where
        A: Send + Sync + 'static,
        B: Send + Sync + 'static,
    {
        let name = name.into();
        let (writer, reader) = self.make_buffer::<(Arc<A>, Arc<B>)>(&name, StageOptions::default());
        self.runners.push(Box::new(JoinRunner {
            name,
            a: a.clone(),
            b: b.clone(),
            writer,
            last: None,
            steps: 0,
            began: false,
        }));
        reader
    }

    /// Adds a pre-built runner (used by the synchronous-pipeline module).
    pub(crate) fn push_runner(&mut self, runner: Box<dyn StageRunner>) {
        self.runners.push(runner);
    }

    /// Creates an output buffer for a stage, honoring history options.
    fn make_buffer<T>(
        &mut self,
        name: &str,
        opts: StageOptions,
    ) -> (BufferWriter<T>, BufferReader<T>) {
        buffer::versioned_traced(
            name,
            BufferOptions {
                keep_history: opts.keep_history,
            },
            &self.recorder,
        )
    }

    /// Finishes construction.
    pub fn build(self) -> Pipeline {
        #[allow(unused_mut)]
        let mut runners = self.runners;
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = &self.fault_plan {
            for runner in &mut runners {
                if let Some(faults) = plan.get(runner.name()) {
                    runner.inject_faults(faults.clone());
                }
            }
        }
        Pipeline {
            runners,
            fail_fast: self.fail_fast,
            recorder: self.recorder,
            runtime: self.runtime,
            schedule: self.schedule,
        }
    }
}

impl Default for PipelineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for PipelineBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PipelineBuilder")
            .field("stages", &self.runners.len())
            .finish()
    }
}

/// A fully constructed (but not yet running) anytime automaton pipeline.
pub struct Pipeline {
    pub(crate) runners: Vec<Box<dyn StageRunner>>,
    pub(crate) fail_fast: bool,
    pub(crate) recorder: Recorder,
    pub(crate) runtime: Option<RuntimeHandle>,
    pub(crate) schedule: Option<(AllocPolicy, Vec<f64>)>,
}

impl Pipeline {
    /// Number of stages in the pipeline.
    pub fn len(&self) -> usize {
        self.runners.len()
    }

    /// `true` if the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.runners.is_empty()
    }

    /// The stage names, in pipeline order.
    ///
    /// Useful for deriving seeded `FaultPlan`s (or other per-stage
    /// configuration) from a built pipeline without repeating the name
    /// list by hand.
    pub fn stage_names(&self) -> Vec<&str> {
        self.runners.iter().map(|r| r.name()).collect()
    }

    /// Makes the first permanently failed stage stop the whole automaton.
    #[deprecated(
        since = "0.2.0",
        note = "use `PipelineBuilder::with_fail_fast()` before `build()` \
                (see DESIGN.md §15)"
    )]
    pub fn fail_fast(mut self) -> Self {
        self.fail_fast = true;
        self
    }

    /// Arms the faults in `plan` on the matching stages (chaos testing).
    #[cfg(feature = "fault-inject")]
    #[deprecated(
        since = "0.2.0",
        note = "use `PipelineBuilder::with_faults(plan)` before `build()` \
                (see DESIGN.md §15)"
    )]
    pub fn inject_faults(mut self, plan: &crate::faultinject::FaultPlan) -> Self {
        for runner in &mut self.runners {
            if let Some(faults) = plan.get(runner.name()) {
                runner.inject_faults(faults.clone());
            }
        }
        self
    }

    /// Returns this pipeline retargeted onto `runtime`, replacing the
    /// builder's choice (used by [`crate::serve::ServePool`] to co-locate
    /// all replicas on one pool-owned runtime).
    pub fn on_runtime(mut self, runtime: RuntimeHandle) -> Self {
        self.runtime = Some(runtime);
        self
    }

    /// `true` if a specific runtime was configured (builder or
    /// [`Pipeline::on_runtime`]).
    pub(crate) fn runtime_is_set(&self) -> bool {
        self.runtime.is_some()
    }

    /// Schedules the stage tasks and starts executing. Stages share the
    /// configured runtime's fixed worker pool (the process-wide one by
    /// default) instead of each owning an OS thread.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an empty pipeline.
    pub fn launch(self) -> Result<Automaton> {
        self.launch_with(ControlToken::new())
    }

    /// Launches with an externally owned control token (e.g. one shared
    /// with other machinery that may stop the automaton).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an empty pipeline, or for
    /// a [`PipelineBuilder::with_schedule`] weight vector whose length
    /// does not match the stage count.
    pub fn launch_with(self, ctl: ControlToken) -> Result<Automaton> {
        if self.runners.is_empty() {
            return Err(CoreError::InvalidConfig(
                "pipeline has no stages".to_string(),
            ));
        }
        let runtime = self.runtime.unwrap_or_else(RuntimeHandle::global);
        let credits = match &self.schedule {
            Some((policy, weights)) => {
                if weights.len() != self.runners.len() {
                    return Err(CoreError::InvalidConfig(format!(
                        "schedule weights ({}) do not match stage count ({})",
                        weights.len(),
                        self.runners.len()
                    )));
                }
                let alloc = crate::scheduler::allocate(*policy, weights, runtime.workers());
                Some(crate::scheduler::credits_from_alloc(&alloc))
            }
            None => None,
        };
        Automaton::spawn(
            self.runners,
            ctl,
            self.fail_fast,
            self.recorder,
            runtime,
            credits,
        )
    }

    /// The recorder this pipeline's stages report trace events to.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }
}

impl fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pipeline")
            .field("stages", &self.runners.len())
            .finish()
    }
}

/// Runner joining two parent buffers into a tuple buffer.
struct JoinRunner<A, B> {
    name: String,
    a: BufferReader<A>,
    b: BufferReader<B>,
    writer: BufferWriter<(Arc<A>, Arc<B>)>,
    /// Parent version pair of the latest published combination.
    last: Option<(Version, Version)>,
    /// Pairs published so far (the join's progress figure).
    steps: u64,
    began: bool,
}

impl<A, B> StageRunner for JoinRunner<A, B>
where
    A: Send + Sync + 'static,
    B: Send + Sync + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, cx: &mut PollCx<'_>) -> StagePoll {
        // Restart safety: nothing to do once the output settled.
        if self.writer.is_final() {
            return StagePoll::Ready(Ok(StageEnd::Final));
        }
        if self.writer.is_terminal() {
            return StagePoll::Ready(Ok(StageEnd::Degraded));
        }
        // Subscribe to both parent buffers and the control token before
        // checking any predicate: any parent publication/close or control
        // transition re-polls the join immediately — no polling loops.
        self.a.subscribe_target(cx.wake);
        self.b.subscribe_target(cx.wake);
        cx.ctl.subscribe_target(cx.wake);
        if !self.began {
            self.writer.begin_run(0);
            self.began = true;
        }
        let budget = cx.budget.max(1);
        let mut pubs: u64 = 0;
        loop {
            match cx.ctl.poll_checkpoint() {
                ControlPoll::Stopped => return StagePoll::Ready(Ok(StageEnd::Stopped)),
                ControlPoll::Paused => return StagePoll::Pending,
                ControlPoll::Running => {}
            }
            let (sa, sb) = (self.a.latest(), self.b.latest());
            if let (Some(sa), Some(sb)) = (&sa, &sb) {
                let pair = (sa.version(), sb.version());
                if self.last != Some(pair) {
                    self.steps += 1;
                    let value = (sa.value_arc(), sb.value_arc());
                    if sa.is_terminal() && sb.is_terminal() {
                        // A degraded parent taints the joined pair: the
                        // approximation flag propagates downstream.
                        return StagePoll::Ready(Ok(if sa.is_degraded() || sb.is_degraded() {
                            self.writer.publish_degraded(value, self.steps);
                            StageEnd::Degraded
                        } else {
                            self.writer.publish_final(value, self.steps);
                            StageEnd::Final
                        }));
                    }
                    self.writer.publish(value, self.steps);
                    self.last = Some(pair);
                    pubs += 1;
                    if pubs >= budget {
                        return StagePoll::Yielded;
                    }
                    continue;
                }
            }
            // A parent that exited without a terminal version will never
            // satisfy the join; report it instead of waiting forever.
            if self.a.is_closed() && !self.a.is_terminal() {
                return StagePoll::Ready(Err(CoreError::SourceClosed {
                    buffer: self.a.name().to_string(),
                }));
            }
            if self.b.is_closed() && !self.b.is_terminal() {
                return StagePoll::Ready(Err(CoreError::SourceClosed {
                    buffer: self.b.name().to_string(),
                }));
            }
            return StagePoll::Pending;
        }
    }

    fn output_control(&self) -> Option<Arc<dyn BufferControl>> {
        Some(self.writer.control_handle())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diffusive::Diffusive;
    use crate::precise::Precise;
    use crate::stage::StepOutcome;
    use std::time::Duration;

    #[test]
    fn builder_counts_stages() {
        let mut pb = PipelineBuilder::new();
        assert!(pb.is_empty());
        let f = pb.source(
            "f",
            1u64,
            Precise::new(|i: &u64| *i),
            StageOptions::default(),
        );
        let _g = pb.stage("g", &f, Precise::new(|i: &u64| *i), StageOptions::default());
        assert_eq!(pb.len(), 2);
        let p = pb.build();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn empty_pipeline_rejected() {
        let p = PipelineBuilder::new().build();
        assert!(matches!(p.launch(), Err(CoreError::InvalidConfig(_))));
    }

    #[test]
    fn linear_chain_reaches_precise_output() {
        // f counts to 100 diffusively; g doubles whatever it sees.
        let mut pb = PipelineBuilder::new();
        let f = pb.source(
            "f",
            (),
            Diffusive::new(
                |_: &()| 0u64,
                |_: &(), out: &mut u64, step| {
                    *out += 1;
                    if step + 1 == 100 {
                        StepOutcome::Done
                    } else {
                        StepOutcome::Continue
                    }
                },
            ),
            StageOptions::with_publish_every(10),
        );
        let g = pb.stage(
            "g",
            &f,
            Precise::new(|i: &u64| i * 2),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        let out = g.wait_final_timeout(Duration::from_secs(20)).unwrap();
        assert_eq!(*out.value(), 200);
        assert!(out.is_final());
        let report = auto.join().unwrap();
        assert!(report.stages.iter().all(|s| s.end == StageEnd::Final));
    }

    #[test]
    fn join2_combines_latest_and_finalizes() {
        let mut pb = PipelineBuilder::new();
        let a = pb.source(
            "a",
            3u64,
            Precise::new(|i: &u64| *i),
            StageOptions::default(),
        );
        let b = pb.source(
            "b",
            4u64,
            Precise::new(|i: &u64| *i),
            StageOptions::default(),
        );
        let j = pb.join2("j", &a, &b);
        let s = pb.stage(
            "s",
            &j,
            Precise::new(|(a, b): &(Arc<u64>, Arc<u64>)| **a * **b),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        let out = s.wait_final_timeout(Duration::from_secs(20)).unwrap();
        assert_eq!(*out.value(), 12);
        auto.join().unwrap();
    }

    #[test]
    fn join2_propagates_degraded_parent() {
        use crate::supervisor::Supervision;
        let mut pb = PipelineBuilder::new();
        // Parent `a` publishes two approximations then dies; Degrade seals
        // its buffer, and the join must taint its own terminal pair.
        let a = pb.source(
            "a",
            (),
            Diffusive::new(
                |_: &()| 0u64,
                |_: &(), out: &mut u64, step| {
                    if step == 2 {
                        panic!("parent died");
                    }
                    *out += 1;
                    StepOutcome::Continue
                },
            ),
            StageOptions::default().supervise(Supervision::degrade()),
        );
        let b = pb.source(
            "b",
            4u64,
            Precise::new(|i: &u64| *i),
            StageOptions::default(),
        );
        let j = pb.join2("j", &a, &b);
        let auto = pb.build().launch().unwrap();
        let out = j.wait_final_timeout(Duration::from_secs(20)).unwrap();
        assert!(out.is_degraded());
        assert!(!out.is_final());
        let (ja, jb) = out.value();
        assert_eq!(**ja, 2);
        assert_eq!(**jb, 4);
        let report = auto.join().unwrap();
        assert!(report.any_degraded());
        assert_eq!(report.faults.degradations, 1);
    }

    #[test]
    fn fan_out_shares_one_buffer() {
        let mut pb = PipelineBuilder::new();
        let f = pb.source(
            "f",
            5u64,
            Precise::new(|i: &u64| *i),
            StageOptions::default(),
        );
        let g = pb.stage(
            "g",
            &f,
            Precise::new(|i: &u64| i + 1),
            StageOptions::default(),
        );
        let h = pb.stage(
            "h",
            &f,
            Precise::new(|i: &u64| i + 2),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        assert_eq!(
            *g.wait_final_timeout(Duration::from_secs(20))
                .unwrap()
                .value(),
            6
        );
        assert_eq!(
            *h.wait_final_timeout(Duration::from_secs(20))
                .unwrap()
                .value(),
            7
        );
        auto.join().unwrap();
    }
}
