//! Online accuracy monitoring and automatic stopping.
//!
//! The paper positions the automaton as the missing substrate for dynamic
//! quality management (Rumba, SAGE, Green): "the decision of stopping can
//! either be automated via dynamic accuracy metrics, user-specified or
//! enforced by time/energy constraints" (§III-A), with the crucial
//! improvement that metrics apply to the **whole application output**
//! rather than to individual code segments. This module is that automated
//! path: an [`AccuracyMonitor`] watches a stage's output buffer, scores
//! every observed version against a reference with a caller-supplied
//! metric, records the runtime–accuracy trace, and (optionally) stops the
//! automaton the moment a quality threshold is reached.

use crate::buffer::BufferReader;
use crate::control::ControlToken;
use crate::error::CoreError;
use crate::metrics::AccuracyTrace;
use crate::version::Version;
use std::sync::Arc;
use std::time::Instant;

/// A background watcher scoring published output versions.
pub struct AccuracyMonitor {
    handle: std::thread::JoinHandle<AccuracyTrace>,
}

impl AccuracyMonitor {
    /// Spawns a monitor on `reader`.
    ///
    /// Every version (as observed; very fast publishers may skip versions)
    /// is scored by `score`; the result is recorded against time since the
    /// monitor started. If `stop_at` is `Some(threshold)`, the monitor
    /// calls [`ControlToken::stop`] once a score reaches it — the
    /// whole-output dynamic error control the paper contrasts with
    /// per-segment metrics.
    ///
    /// The monitor ends when the buffer publishes a terminal version
    /// (precise, or degraded under [`crate::FailurePolicy::Degrade`]), the
    /// automaton stops, or the producer disappears — a watched stage dying
    /// mid-run ends the monitor cleanly with the partial trace.
    pub fn spawn<T, F>(
        reader: BufferReader<T>,
        ctl: ControlToken,
        score: F,
        stop_at: Option<f64>,
    ) -> Self
    where
        T: Send + Sync + 'static,
        F: Fn(&T) -> f64 + Send + 'static,
    {
        let handle = std::thread::Builder::new()
            .name("anytime-monitor".into())
            // lint: allow(l6-no-raw-spawn) -- observer blocks in wait_newer between publications; a dedicated thread keeps it off the stage workers
            .spawn(move || {
                let started = Instant::now();
                let mut trace = AccuracyTrace::new();
                let mut seen: Option<Version> = None;
                loop {
                    let snap = match reader.wait_newer(seen, &ctl) {
                        Ok(snap) => snap,
                        Err(CoreError::Stopped) | Err(CoreError::SourceClosed { .. }) => {
                            return trace;
                        }
                        Err(_) => return trace,
                    };
                    seen = Some(snap.version());
                    let s = score(snap.value());
                    trace.push(started.elapsed(), s);
                    if snap.is_terminal() {
                        return trace;
                    }
                    if let Some(threshold) = stop_at {
                        if s >= threshold {
                            ctl.stop();
                            return trace;
                        }
                    }
                }
            })
            .expect("spawn monitor thread");
        Self { handle }
    }

    /// Waits for the monitor to end and returns the recorded trace.
    ///
    /// # Panics
    ///
    /// Panics if the monitor thread itself panicked (a broken `score`
    /// closure).
    pub fn join(self) -> AccuracyTrace {
        self.handle.join().expect("monitor thread panicked")
    }

    /// `true` once the monitor thread has exited.
    pub fn is_done(&self) -> bool {
        self.handle.is_finished()
    }
}

impl std::fmt::Debug for AccuracyMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccuracyMonitor")
            .field("done", &self.is_done())
            .finish()
    }
}

/// Convenience: runs an automaton until `score` reaches `threshold` on the
/// watched output (or the output is final), then stops it and returns the
/// trace alongside the run report.
///
/// # Errors
///
/// Propagates stage failures from [`crate::Automaton::join`].
pub fn run_until_quality<T, F>(
    pipeline: crate::Pipeline,
    reader: BufferReader<T>,
    score: F,
    threshold: f64,
) -> crate::Result<(crate::RunReport, AccuracyTrace)>
where
    T: Send + Sync + 'static,
    F: Fn(&T) -> f64 + Send + 'static,
{
    let ctl = ControlToken::new();
    let auto = pipeline.launch_with(ctl.clone())?;
    let monitor = AccuracyMonitor::spawn(reader, ctl, score, Some(threshold));
    let trace = monitor.join();
    // The monitor either stopped the automaton at threshold or saw the
    // final version; in both cases join returns promptly.
    let report = auto.stop_and_join()?;
    Ok((report, trace))
}

/// Scores against a shared reference with a metric function — the common
/// monitor configuration.
pub fn against_reference<T, M>(reference: Arc<T>, metric: M) -> impl Fn(&T) -> f64 + Send + 'static
where
    T: Send + Sync + 'static,
    M: Fn(&T, &T) -> f64 + Send + 'static,
{
    move |approx| metric(approx, &reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineBuilder;
    use crate::stage::{StageOptions, StepOutcome};
    use crate::Diffusive;
    use std::time::Duration;

    fn counting_pipeline(n: u64) -> (crate::Pipeline, BufferReader<u64>) {
        let mut pb = PipelineBuilder::new();
        let out = pb.source(
            "ctr",
            (),
            Diffusive::new(
                |_: &()| 0u64,
                move |_: &(), out: &mut u64, step| {
                    std::thread::sleep(Duration::from_micros(100));
                    *out += 1;
                    if step + 1 == n {
                        StepOutcome::Done
                    } else {
                        StepOutcome::Continue
                    }
                },
            ),
            StageOptions::default(),
        );
        (pb.build(), out)
    }

    #[test]
    fn monitor_records_monotone_trace_to_final() {
        let (pipeline, out) = counting_pipeline(50);
        let ctl = ControlToken::new();
        let auto = pipeline.launch_with(ctl.clone()).unwrap();
        let monitor = AccuracyMonitor::spawn(out, ctl, |v: &u64| *v as f64, None);
        let trace = monitor.join();
        auto.join().unwrap();
        assert!(!trace.is_empty());
        assert!(trace.is_monotone_nondecreasing(0.0));
        assert_eq!(trace.final_score(), Some(50.0));
    }

    #[test]
    fn threshold_stops_the_automaton_early() {
        let (pipeline, out) = counting_pipeline(100_000);
        let (report, trace) =
            run_until_quality(pipeline, out.clone(), |v: &u64| *v as f64, 20.0).unwrap();
        assert!(!report.all_final(), "should have stopped early");
        let reached = trace.final_score().unwrap();
        assert!(reached >= 20.0);
        // The kept output is a valid approximation at/above the threshold.
        assert!(*out.latest().unwrap().value() >= 20);
    }

    #[test]
    fn threshold_beyond_final_runs_to_completion() {
        let (pipeline, out) = counting_pipeline(30);
        let (report, trace) = run_until_quality(pipeline, out, |v: &u64| *v as f64, 1e18).unwrap();
        assert!(report.all_final());
        assert_eq!(trace.final_score(), Some(30.0));
    }

    #[test]
    fn monitor_ends_cleanly_when_producer_panics() {
        // The watched stage publishes a few versions, then panics (fail
        // stop). The monitor must end with the partial trace — no hang, no
        // propagated panic.
        let mut pb = PipelineBuilder::new();
        let out = pb.source(
            "doomed",
            (),
            Diffusive::new(
                |_: &()| 0u64,
                |_: &(), out: &mut u64, step| {
                    if step == 5 {
                        panic!("producer died mid-run");
                    }
                    *out += 1;
                    StepOutcome::Continue
                },
            ),
            StageOptions::default(),
        );
        let ctl = ControlToken::new();
        let auto = pb.build().launch_with(ctl.clone()).unwrap();
        let monitor = AccuracyMonitor::spawn(out, ctl, |v: &u64| *v as f64, None);
        let trace = monitor.join();
        assert!(!trace.is_empty(), "versions before the panic were scored");
        assert!(trace.is_monotone_nondecreasing(0.0));
        assert!(trace.final_score().unwrap() <= 5.0);
        assert!(matches!(
            auto.join().unwrap_err(),
            CoreError::StagePanicked { .. }
        ));
    }

    #[test]
    fn monitor_ends_on_degraded_terminal_version() {
        use crate::supervisor::Supervision;
        let mut pb = PipelineBuilder::new();
        let out = pb.source(
            "doomed",
            (),
            Diffusive::new(
                |_: &()| 0u64,
                |_: &(), out: &mut u64, step| {
                    if step == 5 {
                        panic!("producer died mid-run");
                    }
                    *out += 1;
                    StepOutcome::Continue
                },
            ),
            StageOptions::default().supervise(Supervision::degrade()),
        );
        let ctl = ControlToken::new();
        let auto = pb.build().launch_with(ctl.clone()).unwrap();
        let monitor = AccuracyMonitor::spawn(out, ctl, |v: &u64| *v as f64, None);
        let trace = monitor.join();
        // The degraded seal is the terminal observation; its score equals
        // the last approximation's.
        assert!(!trace.is_empty());
        assert_eq!(trace.final_score(), Some(5.0));
        assert!(auto.join().unwrap().any_degraded());
    }

    #[test]
    fn against_reference_adapts_binary_metrics() {
        let score = against_reference(Arc::new(10u64), |a: &u64, r: &u64| {
            -((*a as f64) - (*r as f64)).abs()
        });
        assert_eq!(score(&10), 0.0);
        assert_eq!(score(&7), -3.0);
    }
}
