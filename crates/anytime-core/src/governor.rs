//! Closed-loop pool governance: policy knobs and the brownout controller.
//!
//! The governor is the serving pool's control plane. A standing thread
//! (spawned by [`crate::serve::ServePool`], modeled on the
//! `anytime-supervisor` watchdog) ticks at a fixed cadence and does two
//! jobs:
//!
//! 1. **Self-healing** — scan the worker registry for threads that died
//!    (a caller-supplied closure panicked through the `catch_unwind`
//!    fence, or the OS killed the thread) and respawn them so the pool
//!    never silently loses capacity.
//! 2. **Brownout control** — fold windowed overload signals (deadline
//!    miss rate, shed/clamp activity, RTA bound violations, projected
//!    queue delay) into the [`BrownoutState`] ladder. Each rung trades a
//!    little quality for availability: hedging off, wider batch windows,
//!    clamped budgets for low-floor work, and finally tightened
//!    admission. De-escalation uses a separate (stricter) threshold and a
//!    longer streak so the ladder has hysteresis and does not flap.
//!
//! Everything in this module is deliberately free of generics and I/O so
//! the controller can be unit-tested as a pure state machine.

use std::time::Duration;

use crate::error::{CoreError, Result};
use crate::metrics::DeadlineHistogramStats;

/// Degradation rung the pool is currently operating at.
///
/// The ladder is ordered: each state implies every mitigation of the
/// states below it. `Normal < Hedgeless < Brownout < Shed`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BrownoutState {
    /// Full service: hedging enabled, no clamping, normal admission.
    #[default]
    Normal,
    /// Hedging disabled — stop spending duplicate capacity first.
    Hedgeless,
    /// Plus: batch window widened and low-floor requests get a clamped
    /// budget (quality degrades, availability does not).
    Brownout,
    /// Plus: admission tightened so infeasible work is refused earlier.
    Shed,
}

impl BrownoutState {
    /// Stable numeric encoding, also used for the Prometheus gauge.
    pub fn as_u8(self) -> u8 {
        match self {
            BrownoutState::Normal => 0,
            BrownoutState::Hedgeless => 1,
            BrownoutState::Brownout => 2,
            BrownoutState::Shed => 3,
        }
    }

    /// Inverse of [`Self::as_u8`]; out-of-range values clamp to `Shed`.
    pub fn from_u8(raw: u8) -> Self {
        match raw {
            0 => BrownoutState::Normal,
            1 => BrownoutState::Hedgeless,
            2 => BrownoutState::Brownout,
            _ => BrownoutState::Shed,
        }
    }

    /// Lowercase name used in trace events and logs.
    pub fn as_str(self) -> &'static str {
        match self {
            BrownoutState::Normal => "normal",
            BrownoutState::Hedgeless => "hedgeless",
            BrownoutState::Brownout => "brownout",
            BrownoutState::Shed => "shed",
        }
    }

    /// One rung up the ladder, or `None` at the top.
    pub fn escalated(self) -> Option<Self> {
        match self {
            BrownoutState::Normal => Some(BrownoutState::Hedgeless),
            BrownoutState::Hedgeless => Some(BrownoutState::Brownout),
            BrownoutState::Brownout => Some(BrownoutState::Shed),
            BrownoutState::Shed => None,
        }
    }

    /// One rung down the ladder, or `None` at the bottom.
    pub fn relaxed(self) -> Option<Self> {
        match self {
            BrownoutState::Normal => None,
            BrownoutState::Hedgeless => Some(BrownoutState::Normal),
            BrownoutState::Brownout => Some(BrownoutState::Hedgeless),
            BrownoutState::Shed => Some(BrownoutState::Brownout),
        }
    }
}

/// Knobs for the closed-loop brownout controller.
///
/// All thresholds are evaluated once per governor tick over the deltas
/// accumulated since the previous tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutPolicy {
    /// Windowed deadline-miss rate at or above which a tick counts as
    /// "hot" (pressure present). Must be in `(0, 1]` and strictly above
    /// [`Self::exit_miss_rate`].
    pub enter_miss_rate: f64,
    /// Miss rate at or below which a tick counts as "cool". The gap
    /// between enter and exit is the hysteresis band.
    pub exit_miss_rate: f64,
    /// Queue depth at or above which a tick counts as hot regardless of
    /// the miss rate.
    pub enter_queue: usize,
    /// Projected queue delay above which a tick counts as hot.
    pub max_queue_delay: Duration,
    /// Consecutive hot ticks required to escalate one rung.
    pub up_ticks: u32,
    /// Consecutive cool ticks required to de-escalate one rung. Usually
    /// larger than `up_ticks`: escalate fast, recover slowly.
    pub down_ticks: u32,
    /// Minimum responses in a tick window for the miss rate to be
    /// trusted; below this the miss-rate signal is ignored.
    pub min_window: u64,
    /// Requests with floors at or below this value are eligible for
    /// budget clamping in `Brownout` and `Shed`.
    pub clamp_floor: f64,
    /// Budget imposed on clamped requests (their deadline is kept, only
    /// the compute budget shrinks — quality degrades, never the answer).
    pub clamp_budget: Duration,
    /// Multiplier applied to the batch gather window in `Brownout` and
    /// above. Must be ≥ 1.
    pub batch_widen: f64,
    /// Multiplier applied to the minimum-service floor used by
    /// admission-side reachability checks in `Shed`. Must be ≥ 1.
    pub admission_tighten: f64,
}

impl Default for BrownoutPolicy {
    fn default() -> Self {
        BrownoutPolicy {
            enter_miss_rate: 0.2,
            exit_miss_rate: 0.05,
            enter_queue: 8,
            max_queue_delay: Duration::from_millis(50),
            up_ticks: 2,
            down_ticks: 4,
            min_window: 8,
            clamp_floor: 0.3,
            clamp_budget: Duration::from_millis(10),
            batch_widen: 4.0,
            admission_tighten: 2.0,
        }
    }
}

impl BrownoutPolicy {
    /// Rejects self-contradictory knob combinations.
    pub fn validate(&self) -> Result<()> {
        if !(self.enter_miss_rate > 0.0 && self.enter_miss_rate <= 1.0) {
            return Err(CoreError::InvalidConfig(format!(
                "brownout enter_miss_rate must be in (0, 1], got {}",
                self.enter_miss_rate
            )));
        }
        if !(self.exit_miss_rate >= 0.0 && self.exit_miss_rate < self.enter_miss_rate) {
            return Err(CoreError::InvalidConfig(format!(
                "brownout exit_miss_rate must be in [0, enter_miss_rate), got {}",
                self.exit_miss_rate
            )));
        }
        if self.enter_queue == 0 {
            return Err(CoreError::InvalidConfig(
                "brownout enter_queue must be at least 1".into(),
            ));
        }
        if self.up_ticks == 0 || self.down_ticks == 0 {
            return Err(CoreError::InvalidConfig(
                "brownout up_ticks/down_ticks must be at least 1".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.clamp_floor) {
            return Err(CoreError::InvalidConfig(format!(
                "brownout clamp_floor must be in [0, 1], got {}",
                self.clamp_floor
            )));
        }
        if self.clamp_budget.is_zero() {
            return Err(CoreError::InvalidConfig(
                "brownout clamp_budget must be non-zero".into(),
            ));
        }
        if self.batch_widen < 1.0 || !self.batch_widen.is_finite() {
            return Err(CoreError::InvalidConfig(format!(
                "brownout batch_widen must be a finite value >= 1, got {}",
                self.batch_widen
            )));
        }
        if self.admission_tighten < 1.0 || !self.admission_tighten.is_finite() {
            return Err(CoreError::InvalidConfig(format!(
                "brownout admission_tighten must be a finite value >= 1, got {}",
                self.admission_tighten
            )));
        }
        Ok(())
    }
}

/// Top-level governor configuration for a [`crate::serve::ServePool`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorPolicy {
    /// Interval between governor ticks. The governor sleeps
    /// interruptibly, so shutdown never waits out a full tick.
    pub tick: Duration,
    /// Whether the governor respawns dead worker threads. On by default;
    /// turning it off leaves panics fenced but capacity unrepaired.
    pub respawn: bool,
    /// Optional closed-loop brownout controller. `None` (the default)
    /// keeps self-healing without any quality-degradation ladder.
    pub brownout: Option<BrownoutPolicy>,
}

impl Default for GovernorPolicy {
    fn default() -> Self {
        GovernorPolicy {
            tick: Duration::from_millis(5),
            respawn: true,
            brownout: None,
        }
    }
}

impl GovernorPolicy {
    /// Rejects self-contradictory knob combinations.
    pub fn validate(&self) -> Result<()> {
        if self.tick.is_zero() {
            return Err(CoreError::InvalidConfig(
                "governor tick must be non-zero".into(),
            ));
        }
        if let Some(b) = &self.brownout {
            b.validate()?;
        }
        Ok(())
    }

    /// Sets the tick interval.
    pub fn tick(mut self, tick: Duration) -> Self {
        self.tick = tick;
        self
    }

    /// Enables or disables dead-worker respawn.
    pub fn respawn(mut self, respawn: bool) -> Self {
        self.respawn = respawn;
        self
    }

    /// Installs a brownout controller.
    pub fn brownout(mut self, policy: BrownoutPolicy) -> Self {
        self.brownout = Some(policy);
        self
    }
}

/// Per-tick overload signals, already reduced to deltas over the window
/// since the previous tick.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TickSignals {
    /// Responses recorded in the window.
    pub responses: u64,
    /// Responses in the window that overshot their deadline.
    pub misses: u64,
    /// Current queue depth (instantaneous, not a delta).
    pub queue_depth: usize,
    /// Projected wait for a request admitted right now.
    pub queue_delay: Duration,
    /// Requests shed in the window.
    pub shed_delta: u64,
    /// RTA bound violations observed in the window.
    pub bound_violation_delta: u64,
}

impl TickSignals {
    /// Windowed deadline-miss rate; 0 when the window is empty.
    pub fn miss_rate(&self) -> f64 {
        if self.responses == 0 {
            0.0
        } else {
            self.misses as f64 / self.responses as f64
        }
    }
}

/// The hysteresis state machine that walks [`BrownoutState`] up and down
/// the ladder one rung at a time.
#[derive(Debug)]
pub struct BrownoutControl {
    policy: BrownoutPolicy,
    state: BrownoutState,
    hot_streak: u32,
    cool_streak: u32,
}

impl BrownoutControl {
    /// A controller starting at `Normal`.
    pub fn new(policy: BrownoutPolicy) -> Self {
        BrownoutControl {
            policy,
            state: BrownoutState::Normal,
            hot_streak: 0,
            cool_streak: 0,
        }
    }

    /// Current rung.
    pub fn state(&self) -> BrownoutState {
        self.state
    }

    /// Folds one tick's signals into the controller. Returns the
    /// `(from, to)` pair when this tick crossed a rung boundary.
    pub fn observe(&mut self, s: TickSignals) -> Option<(BrownoutState, BrownoutState)> {
        let p = &self.policy;
        let miss_hot = s.responses >= p.min_window && s.miss_rate() >= p.enter_miss_rate;
        let hot = miss_hot
            || s.queue_depth >= p.enter_queue
            || s.shed_delta > 0
            || s.bound_violation_delta > 0
            || s.queue_delay > p.max_queue_delay;
        let cool = !hot
            && (s.responses == 0 || s.miss_rate() <= p.exit_miss_rate)
            && s.queue_depth <= p.enter_queue / 2
            && s.queue_delay <= p.max_queue_delay / 2;

        if hot {
            self.cool_streak = 0;
            self.hot_streak = self.hot_streak.saturating_add(1);
            if self.hot_streak >= p.up_ticks {
                if let Some(next) = self.state.escalated() {
                    let from = self.state;
                    self.state = next;
                    self.hot_streak = 0;
                    return Some((from, next));
                }
                self.hot_streak = 0;
            }
        } else if cool {
            self.hot_streak = 0;
            self.cool_streak = self.cool_streak.saturating_add(1);
            if self.cool_streak >= p.down_ticks {
                if let Some(next) = self.state.relaxed() {
                    let from = self.state;
                    self.state = next;
                    self.cool_streak = 0;
                    return Some((from, next));
                }
                self.cool_streak = 0;
            }
        } else {
            // Neither clearly hot nor clearly cool: hold the rung and
            // restart both streaks so a mixed window never flaps.
            self.hot_streak = 0;
            self.cool_streak = 0;
        }
        None
    }
}

/// Differ that turns cumulative pool counters into per-tick deltas for
/// [`BrownoutControl::observe`].
#[derive(Debug, Default)]
pub struct SignalWindow {
    prev_responses: u64,
    prev_misses: u64,
    prev_shed: u64,
    prev_violations: u64,
}

impl SignalWindow {
    /// A window with no history (the first tick sees all-zero deltas
    /// against the pool's state at construction).
    pub fn new() -> Self {
        SignalWindow::default()
    }

    /// Reduces cumulative counters to this tick's [`TickSignals`].
    ///
    /// `deadlines` is the pool's deadline histogram snapshot; the miss
    /// count is its unbounded overshoot bucket, matching
    /// [`DeadlineHistogramStats::hit_rate`]'s definition of a miss.
    pub fn tick(
        &mut self,
        deadlines: &DeadlineHistogramStats,
        shed: u64,
        bound_violations: u64,
        queue_depth: usize,
        queue_delay: Duration,
    ) -> TickSignals {
        let responses = deadlines.count();
        let misses = *deadlines.buckets.last().expect("histogram has buckets");
        let signals = TickSignals {
            responses: responses.saturating_sub(self.prev_responses),
            misses: misses.saturating_sub(self.prev_misses),
            queue_depth,
            queue_delay,
            shed_delta: shed.saturating_sub(self.prev_shed),
            bound_violation_delta: bound_violations.saturating_sub(self.prev_violations),
        };
        self.prev_responses = responses;
        self.prev_misses = misses;
        self.prev_shed = shed;
        self.prev_violations = bound_violations;
        signals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot() -> TickSignals {
        TickSignals {
            responses: 20,
            misses: 10,
            queue_depth: 0,
            queue_delay: Duration::ZERO,
            shed_delta: 0,
            bound_violation_delta: 0,
        }
    }

    fn cool() -> TickSignals {
        TickSignals::default()
    }

    fn policy() -> BrownoutPolicy {
        BrownoutPolicy {
            up_ticks: 2,
            down_ticks: 3,
            ..BrownoutPolicy::default()
        }
    }

    #[test]
    fn ladder_is_ordered_and_round_trips() {
        use BrownoutState::*;
        assert!(Normal < Hedgeless && Hedgeless < Brownout && Brownout < Shed);
        for s in [Normal, Hedgeless, Brownout, Shed] {
            assert_eq!(BrownoutState::from_u8(s.as_u8()), s);
            assert!(!s.as_str().is_empty());
        }
        assert_eq!(Normal.relaxed(), None);
        assert_eq!(Shed.escalated(), None);
        assert_eq!(Normal.escalated(), Some(Hedgeless));
        assert_eq!(Shed.relaxed(), Some(Brownout));
        assert_eq!(BrownoutState::from_u8(200), Shed);
    }

    #[test]
    fn default_policies_validate() {
        BrownoutPolicy::default().validate().expect("brownout");
        GovernorPolicy::default().validate().expect("governor");
        GovernorPolicy::default()
            .brownout(BrownoutPolicy::default())
            .validate()
            .expect("combined");
    }

    #[test]
    fn invalid_policies_are_rejected() {
        let bad = |p: BrownoutPolicy| p.validate().expect_err("must reject");
        bad(BrownoutPolicy {
            enter_miss_rate: 0.0,
            ..BrownoutPolicy::default()
        });
        bad(BrownoutPolicy {
            exit_miss_rate: 0.5,
            enter_miss_rate: 0.4,
            ..BrownoutPolicy::default()
        });
        bad(BrownoutPolicy {
            enter_queue: 0,
            ..BrownoutPolicy::default()
        });
        bad(BrownoutPolicy {
            up_ticks: 0,
            ..BrownoutPolicy::default()
        });
        bad(BrownoutPolicy {
            clamp_floor: 1.5,
            ..BrownoutPolicy::default()
        });
        bad(BrownoutPolicy {
            clamp_budget: Duration::ZERO,
            ..BrownoutPolicy::default()
        });
        bad(BrownoutPolicy {
            batch_widen: 0.5,
            ..BrownoutPolicy::default()
        });
        bad(BrownoutPolicy {
            admission_tighten: f64::NAN,
            ..BrownoutPolicy::default()
        });
        GovernorPolicy {
            tick: Duration::ZERO,
            ..GovernorPolicy::default()
        }
        .validate()
        .expect_err("zero tick");
    }

    #[test]
    fn escalates_after_up_ticks_and_recovers_after_down_ticks() {
        let mut c = BrownoutControl::new(policy());
        assert_eq!(c.observe(hot()), None);
        assert_eq!(
            c.observe(hot()),
            Some((BrownoutState::Normal, BrownoutState::Hedgeless))
        );
        assert_eq!(c.state(), BrownoutState::Hedgeless);
        // Two more hot ticks climb the next rung.
        assert_eq!(c.observe(hot()), None);
        assert_eq!(
            c.observe(hot()),
            Some((BrownoutState::Hedgeless, BrownoutState::Brownout))
        );
        // Cooling takes down_ticks = 3 per rung.
        assert_eq!(c.observe(cool()), None);
        assert_eq!(c.observe(cool()), None);
        assert_eq!(
            c.observe(cool()),
            Some((BrownoutState::Brownout, BrownoutState::Hedgeless))
        );
        assert_eq!(c.observe(cool()), None);
        assert_eq!(c.observe(cool()), None);
        assert_eq!(
            c.observe(cool()),
            Some((BrownoutState::Hedgeless, BrownoutState::Normal))
        );
        // At the bottom further cool ticks are inert.
        for _ in 0..5 {
            assert_eq!(c.observe(cool()), None);
        }
        assert_eq!(c.state(), BrownoutState::Normal);
    }

    #[test]
    fn mixed_ticks_hold_the_current_rung() {
        let mut c = BrownoutControl::new(policy());
        c.observe(hot());
        c.observe(hot());
        assert_eq!(c.state(), BrownoutState::Hedgeless);
        // Not hot, but queue still half-full: neither hot nor cool.
        let mixed = TickSignals {
            queue_depth: 5,
            ..TickSignals::default()
        };
        for _ in 0..10 {
            assert_eq!(c.observe(mixed), None);
        }
        assert_eq!(c.state(), BrownoutState::Hedgeless);
        // A single hot tick after the hold must not escalate (streak
        // was reset by the mixed ticks).
        assert_eq!(c.observe(hot()), None);
    }

    #[test]
    fn queue_and_violation_signals_are_hot_without_misses() {
        let mut c = BrownoutControl::new(policy());
        let queue_hot = TickSignals {
            queue_depth: 8,
            ..TickSignals::default()
        };
        c.observe(queue_hot);
        assert_eq!(
            c.observe(queue_hot),
            Some((BrownoutState::Normal, BrownoutState::Hedgeless))
        );
        let mut c = BrownoutControl::new(policy());
        let viol = TickSignals {
            bound_violation_delta: 1,
            ..TickSignals::default()
        };
        c.observe(viol);
        assert!(c.observe(viol).is_some());
        let mut c = BrownoutControl::new(policy());
        let delay = TickSignals {
            queue_delay: Duration::from_secs(1),
            ..TickSignals::default()
        };
        c.observe(delay);
        assert!(c.observe(delay).is_some());
    }

    #[test]
    fn small_windows_do_not_trust_miss_rate() {
        let mut c = BrownoutControl::new(policy());
        // 100% miss rate but below min_window: not hot.
        let tiny = TickSignals {
            responses: 2,
            misses: 2,
            ..TickSignals::default()
        };
        for _ in 0..10 {
            assert_eq!(c.observe(tiny), None);
        }
        assert_eq!(c.state(), BrownoutState::Normal);
    }

    #[test]
    fn signal_window_produces_deltas() {
        let mut w = SignalWindow::new();
        let mut hist = DeadlineHistogramStats::default();
        hist.buckets[0] = 4;
        hist.buckets[6] = 1;
        let s = w.tick(&hist, 2, 1, 3, Duration::from_millis(7));
        assert_eq!(s.responses, 5);
        assert_eq!(s.misses, 1);
        assert_eq!(s.shed_delta, 2);
        assert_eq!(s.bound_violation_delta, 1);
        assert_eq!(s.queue_depth, 3);
        // Second tick with unchanged counters: all-zero deltas.
        let s = w.tick(&hist, 2, 1, 0, Duration::ZERO);
        assert_eq!(s.responses, 0);
        assert_eq!(s.misses, 0);
        assert_eq!(s.shed_delta, 0);
        assert_eq!(s.bound_violation_delta, 0);
        // Growth shows up as the difference.
        hist.buckets[6] = 3;
        let s = w.tick(&hist, 5, 1, 0, Duration::ZERO);
        assert_eq!(s.responses, 2);
        assert_eq!(s.misses, 2);
        assert_eq!(s.shed_delta, 3);
    }
}
