use crate::buffer::BufferControl;
use crate::control::ControlToken;
use crate::error::{CoreError, Result};
use crate::metrics::{self, FaultCounters, FaultStats, WaitStats};
use crate::notify::WaitSet;
use crate::observe::MetricStats;
use crate::stage::{StageEnd, StageRunner};
use crate::supervisor::{self, FailurePolicy, WatchedStage};
use crate::trace::{EventKind, Recorder, TraceLog};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A stage driver thread's outcome: how the stage ended (or failed) plus
/// the number of restarts its supervision performed.
type StageThread = JoinHandle<(Result<StageEnd>, u32)>;

/// A running anytime automaton: one driver thread per stage, all sharing a
/// [`ControlToken`].
///
/// The automaton embodies the model's two key guarantees:
///
/// - **Early availability**: every stage's output buffer holds a complete
///   approximate output shortly after launch, improving with time.
/// - **Interruptibility**: [`Automaton::stop`] halts all stages at the next
///   step boundary, leaving the latest published outputs readable. If never
///   stopped, every stage eventually publishes its precise output and the
///   automaton finishes on its own.
///
/// "Hold-the-power-button computing" (paper §I): run the automaton while the
/// user holds the button, stop when they release it.
pub struct Automaton {
    ctl: ControlToken,
    threads: Vec<(String, StageThread)>,
    started: Instant,
    /// Stage threads that have finished driving; woken through `done_ws`.
    finished: Arc<AtomicUsize>,
    /// Wait set bumped by every finishing stage thread, so completion
    /// waits ([`Automaton::run_for`]) block instead of polling.
    done_ws: WaitSet,
    /// Fault-handling counters shared with stage threads and the watchdog.
    counters: Arc<FaultCounters>,
    /// Control handles to every stage output buffer, for aggregating
    /// dropped-publish counts into the end-state report.
    controls: Vec<Arc<dyn BufferControl>>,
    /// The progress-watchdog thread, if any stage configured one.
    watchdog: Option<JoinHandle<()>>,
    /// The trace recorder shared with every stage thread (no-op when
    /// tracing is disabled).
    recorder: Recorder,
}

impl Automaton {
    pub(crate) fn spawn(
        runners: Vec<Box<dyn StageRunner>>,
        ctl: ControlToken,
        fail_fast: bool,
        recorder: Recorder,
    ) -> Result<Automaton> {
        let started = Instant::now();
        let finished = Arc::new(AtomicUsize::new(0));
        let done_ws = WaitSet::new();
        let counters = Arc::new(FaultCounters::default());
        let total_stages = runners.len();
        let mut controls = Vec::new();
        let mut watched = Vec::new();
        for runner in &runners {
            if let Some(control) = runner.output_control() {
                if let Some(cfg) = runner.supervision().watchdog {
                    watched.push(WatchedStage {
                        control: Arc::clone(&control),
                        cfg,
                        stage: recorder.stage(runner.name()),
                    });
                }
                controls.push(control);
            }
        }
        let mut threads = Vec::with_capacity(runners.len());
        for mut runner in runners {
            let name = runner.name().to_string();
            let supervision = runner.supervision();
            let control = runner.output_control();
            let thread_ctl = ctl.clone();
            let thread_finished = Arc::clone(&finished);
            let thread_done_ws = done_ws.clone();
            let thread_counters = Arc::clone(&counters);
            let thread_recorder = recorder.clone();
            let thread_stage = recorder.stage(&name);
            let handle = std::thread::Builder::new()
                .name(format!("anytime-{name}"))
                .spawn(move || {
                    let mut restarts = 0u32;
                    let result = loop {
                        match catch_unwind(AssertUnwindSafe(|| runner.drive(&thread_ctl))) {
                            Ok(Ok(end)) => {
                                // The watchdog may have sealed the buffer
                                // degraded while the driver kept going;
                                // surface that in the stage outcome.
                                let end = match &control {
                                    Some(c) if end == StageEnd::Final && c.is_degraded() => {
                                        StageEnd::Degraded
                                    }
                                    _ => end,
                                };
                                break Ok(end);
                            }
                            // Driver errors (closed upstream, …) are
                            // permanent immediately: restarting cannot
                            // resurrect a dead input.
                            Ok(Err(e)) => break Err(e),
                            Err(payload) => {
                                let err = CoreError::StagePanicked {
                                    stage: runner.name().to_string(),
                                    message: panic_message(payload.as_ref()),
                                    steps_at_death: runner.steps_completed(),
                                };
                                if let FailurePolicy::Restart {
                                    max_attempts,
                                    backoff,
                                } = supervision.policy
                                {
                                    if restarts < max_attempts {
                                        restarts += 1;
                                        thread_counters.record_restart();
                                        thread_recorder
                                            .stage_event(EventKind::Restart, thread_stage);
                                        if supervisor::backoff_interruptible(&thread_ctl, backoff) {
                                            continue;
                                        }
                                        break Ok(StageEnd::Stopped);
                                    }
                                }
                                break Err(err);
                            }
                        }
                    };
                    // Permanent-failure handling per policy. Sealing happens
                    // before the runner is dropped (which closes the buffer)
                    // so downstream readers observe the degraded terminal
                    // version, never a bare close.
                    let result = match result {
                        Err(e) => {
                            let sealed = supervision.policy == FailurePolicy::Degrade
                                && control.as_ref().is_some_and(|c| c.seal_degraded());
                            if sealed {
                                thread_counters.record_degradation();
                                Ok(StageEnd::Degraded)
                            } else {
                                thread_counters.record_permanent_failure();
                                thread_recorder
                                    .stage_event(EventKind::PermanentFailure, thread_stage);
                                if fail_fast {
                                    thread_ctl.stop();
                                }
                                Err(e)
                            }
                        }
                        ok => ok,
                    };
                    // Dropping the runner here closes its output buffer, so
                    // dependent stages observe SourceClosed instead of
                    // blocking forever.
                    drop(runner);
                    thread_finished.fetch_add(1, Ordering::Release);
                    thread_done_ws.wake();
                    (result, restarts)
                })
                .map_err(|e| CoreError::InvalidConfig(format!("failed to spawn thread: {e}")))?;
            threads.push((name, handle));
        }
        let watchdog = if watched.is_empty() {
            None
        } else {
            Some(
                supervisor::spawn_watchdog(
                    watched,
                    ctl.clone(),
                    Arc::clone(&counters),
                    Arc::clone(&finished),
                    total_stages,
                    done_ws.clone(),
                    recorder.clone(),
                )
                .map_err(|e| {
                    CoreError::InvalidConfig(format!("failed to spawn supervisor thread: {e}"))
                })?,
            )
        };
        Ok(Automaton {
            ctl,
            threads,
            started,
            finished,
            done_ws,
            counters,
            controls,
            watchdog,
            recorder,
        })
    }

    /// The trace recorder this automaton publishes events through. A no-op
    /// handle unless the pipeline was built with
    /// [`crate::PipelineBuilder::traced`].
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Drains and returns the trace events accumulated so far (empty when
    /// tracing is disabled). Safe to call while the automaton runs; each
    /// call returns only events since the previous drain.
    pub fn trace(&self) -> TraceLog {
        self.recorder.drain()
    }

    /// A clone of the shared control token.
    pub fn control(&self) -> ControlToken {
        self.ctl.clone()
    }

    /// Requests all stages stop at their next step boundary.
    pub fn stop(&self) {
        self.ctl.stop();
    }

    /// Pauses all stages at their next step boundary.
    pub fn pause(&self) {
        self.ctl.pause();
    }

    /// Resumes a paused automaton.
    pub fn resume(&self) {
        self.ctl.resume();
    }

    /// `true` once every stage thread has exited (all stages final,
    /// stopped, or failed).
    pub fn is_done(&self) -> bool {
        self.finished.load(Ordering::Acquire) == self.threads.len()
    }

    /// Time since launch.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// A point-in-time view of the run's fault handling: restarts, stalls,
    /// degradations, permanent failures, and dropped publications.
    pub fn fault_stats(&self) -> FaultStats {
        let mut stats = self.counters.snapshot();
        stats.dropped_publishes = self.controls.iter().map(|c| c.dropped_publishes()).sum();
        stats
    }

    /// Waits for all stages to finish and reports how each ended.
    ///
    /// # Errors
    ///
    /// Returns the first stage error encountered (panic, closed upstream).
    /// A [`StageEnd::Stopped`] outcome is not an error.
    pub fn join(self) -> Result<RunReport> {
        let started = self.started;
        let mut stages = Vec::with_capacity(self.threads.len());
        let mut first_err = None;
        for (name, handle) in self.threads {
            match handle.join() {
                Ok((Ok(end), restarts)) => stages.push(StageReport {
                    name,
                    end,
                    restarts,
                    waits: WaitStats::default(),
                }),
                Ok((Err(e), _)) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
                Err(payload) => {
                    if first_err.is_none() {
                        first_err = Some(CoreError::StagePanicked {
                            stage: name,
                            message: panic_message(payload.as_ref()),
                            steps_at_death: 0,
                        });
                    }
                }
            }
        }
        // Every stage thread has exited, so the supervisor observes
        // `finished == total` and returns promptly.
        if let Some(wd) = self.watchdog {
            let _ = wd.join();
        }
        // Every stage thread has exited, so the per-buffer wait counters
        // are final; attach them to the matching stage reports.
        for stage in &mut stages {
            if let Some(c) = self.controls.iter().find(|c| c.buffer_name() == stage.name) {
                stage.waits = c.wait_stats();
            }
        }
        let mut faults = self.counters.snapshot();
        faults.dropped_publishes = self.controls.iter().map(|c| c.dropped_publishes()).sum();
        match first_err {
            Some(e) => Err(e),
            None => Ok(RunReport {
                elapsed: started.elapsed(),
                stages,
                faults,
            }),
        }
    }

    /// Runs until all stages finish or `budget` elapses, then stops and
    /// joins — the contract-style usage where a hard time budget governs
    /// output quality.
    ///
    /// # Errors
    ///
    /// Propagates stage failures, as [`Automaton::join`].
    pub fn run_for(self, budget: Duration) -> Result<RunReport> {
        let deadline = Instant::now() + budget;
        self.wait_done_deadline(deadline);
        self.stop();
        self.join()
    }

    /// Blocks until every stage thread has exited or `deadline` passes,
    /// whichever comes first. Returns `true` if the automaton finished.
    ///
    /// Event-driven: each finishing stage bumps `done_ws`, so this wait
    /// wakes on stage exits or the exact deadline — no polling loop. The
    /// automaton keeps running either way; this is the observation a
    /// deadline-bound caller (e.g. the serving layer) makes before
    /// deciding to take the current best snapshot and stop the run.
    pub fn wait_done_deadline(&self, deadline: Instant) -> bool {
        loop {
            let seen = self.done_ws.epoch();
            if self.is_done() {
                return true;
            }
            if !self.done_ws.wait_deadline(seen, deadline) {
                return self.is_done();
            }
        }
    }

    /// Runs until all stages finish or an **energy** budget is exhausted,
    /// then stops and joins — hold-the-power-button computing with the
    /// budget in joules instead of seconds.
    ///
    /// `power_w` is the machine's draw while the automaton runs (e.g. from
    /// an `anytime_sim::EnergyModel`); the budget converts to a wall-clock
    /// deadline of `budget_j / power_w` seconds.
    ///
    /// # Errors
    ///
    /// Propagates stage failures, as [`Automaton::join`]. Returns
    /// [`CoreError::InvalidConfig`] if `power_w` is not positive and
    /// finite.
    pub fn run_for_energy(self, budget_j: f64, power_w: f64) -> Result<RunReport> {
        let power_ok = power_w.is_finite() && power_w > 0.0;
        let budget_ok = budget_j.is_finite() && budget_j >= 0.0;
        if !power_ok || !budget_ok {
            return Err(CoreError::InvalidConfig(
                "energy budget and power must be positive and finite".into(),
            ));
        }
        self.run_for(Duration::from_secs_f64(budget_j / power_w))
    }

    /// Stops immediately and joins.
    ///
    /// # Errors
    ///
    /// Propagates stage failures, as [`Automaton::join`].
    pub fn stop_and_join(self) -> Result<RunReport> {
        self.stop();
        self.join()
    }
}

impl fmt::Debug for Automaton {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Automaton")
            .field("stages", &self.threads.len())
            .field("elapsed", &self.elapsed())
            .field("done", &self.is_done())
            .finish()
    }
}

/// How every stage of a finished automaton ended.
#[derive(Debug)]
pub struct RunReport {
    /// Wall-clock time from launch to the last stage exit.
    pub elapsed: Duration,
    /// Per-stage outcomes, in stage-construction order.
    pub stages: Vec<StageReport>,
    /// Fault handling over the whole run: restarts, stalls, degradations,
    /// permanent failures, dropped publications.
    pub faults: FaultStats,
}

impl RunReport {
    /// `true` if every stage delivered its precise output.
    pub fn all_final(&self) -> bool {
        self.stages.iter().all(|s| s.end == StageEnd::Final)
    }

    /// `true` if any stage ended with a degraded (approximate terminal)
    /// output.
    pub fn any_degraded(&self) -> bool {
        self.stages.iter().any(|s| s.end == StageEnd::Degraded)
    }

    /// Aggregate buffer-wait statistics across every stage, folded with
    /// [`crate::observe::MetricStats::absorb`].
    pub fn total_waits(&self) -> WaitStats {
        let mut total = WaitStats::default();
        for s in &self.stages {
            total.absorb(&s.waits);
        }
        total
    }

    /// Renders the report's metrics — fault counters plus aggregate wait
    /// statistics — in Prometheus text exposition format, sharing families
    /// with the live [`crate::observe::Observe`] renderers.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let _ = metrics::render_fault_stats(&mut out, &self.faults, &[]);
        let _ = metrics::render_wait_stats(&mut out, &self.total_waits(), &[]);
        out
    }
}

/// One stage's outcome in a [`RunReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageReport {
    /// The stage name.
    pub name: String,
    /// How the stage's driver ended.
    pub end: StageEnd,
    /// Times the stage's driver was restarted after a panic.
    pub restarts: u32,
    /// Wait/wake statistics for the stage's output buffer over the run.
    pub waits: WaitStats,
}

/// Renders a panic payload when it was a string; `None` for opaque
/// payloads, which [`CoreError::StagePanicked`] reports as such instead of
/// inventing text. Shared with the serve layer's `catch_unwind` fences
/// (`CoreError::ReplicaPanicked`).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> Option<String> {
    if let Some(s) = payload.downcast_ref::<&str>() {
        Some((*s).to_string())
    } else {
        payload.downcast_ref::<String>().cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diffusive::Diffusive;
    use crate::pipeline::PipelineBuilder;
    use crate::precise::Precise;
    use crate::stage::{StageOptions, StepOutcome};

    fn slow_counter(n: u64, delay: Duration) -> Diffusive<(), u64> {
        Diffusive::new(
            move |_: &()| 0u64,
            move |_: &(), out: &mut u64, step| {
                std::thread::sleep(delay);
                *out += 1;
                if step + 1 == n {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            },
        )
    }

    #[test]
    fn join_reports_all_final() {
        let mut pb = PipelineBuilder::new();
        let f = pb.source(
            "f",
            (),
            slow_counter(5, Duration::ZERO),
            StageOptions::default(),
        );
        let _g = pb.stage("g", &f, Precise::new(|i: &u64| *i), StageOptions::default());
        let report = pb.build().launch().unwrap().join().unwrap();
        assert!(report.all_final());
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.stages[0].name, "f");
    }

    #[test]
    fn run_for_interrupts_long_computation() {
        let mut pb = PipelineBuilder::new();
        let f = pb.source(
            "f",
            (),
            slow_counter(100_000, Duration::from_millis(1)),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        let report = auto.run_for(Duration::from_millis(50)).unwrap();
        assert!(!report.all_final());
        // The interrupted stage still produced a valid approximate output.
        let snap = f.latest().expect("approximate output available");
        assert!(*snap.value() > 0);
        assert!(!snap.is_final());
    }

    #[test]
    fn run_for_returns_early_when_done() {
        let mut pb = PipelineBuilder::new();
        let _f = pb.source(
            "f",
            (),
            slow_counter(3, Duration::ZERO),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        let started = Instant::now();
        let report = auto.run_for(Duration::from_secs(30)).unwrap();
        assert!(report.all_final());
        assert!(started.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn panicking_stage_is_reported_and_does_not_hang_children() {
        let mut pb = PipelineBuilder::new();
        let f = pb.source(
            "bad",
            (),
            Precise::new(|_: &()| -> u64 { panic!("stage exploded") }),
            StageOptions::default(),
        );
        let _g = pb.stage("g", &f, Precise::new(|i: &u64| *i), StageOptions::default());
        let err = pb.build().launch().unwrap().join().unwrap_err();
        match err {
            CoreError::StagePanicked { stage, message, .. } => {
                assert_eq!(stage, "bad");
                assert!(message.unwrap().contains("exploded"));
            }
            CoreError::SourceClosed { .. } => {
                // Acceptable: the child error may be collected first.
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn pause_and_resume_round_trip() {
        let mut pb = PipelineBuilder::new();
        let f = pb.source(
            "f",
            (),
            slow_counter(10_000, Duration::from_micros(100)),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        std::thread::sleep(Duration::from_millis(20));
        auto.pause();
        std::thread::sleep(Duration::from_millis(10)); // let stages reach the checkpoint
        let frozen = f.latest().map(|s| s.version());
        std::thread::sleep(Duration::from_millis(30));
        let still = f.latest().map(|s| s.version());
        assert_eq!(frozen, still, "output advanced while paused");
        auto.resume();
        std::thread::sleep(Duration::from_millis(30));
        let after = f.latest().map(|s| s.version());
        assert!(after > still, "output did not advance after resume");
        auto.stop_and_join().unwrap();
    }

    #[test]
    fn energy_budget_bounds_runtime() {
        let mut pb = PipelineBuilder::new();
        let f = pb.source(
            "f",
            (),
            slow_counter(1_000_000, Duration::from_micros(100)),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        // 100 W machine, 3 J budget -> ~30 ms.
        let started = Instant::now();
        let report = auto.run_for_energy(3.0, 100.0).unwrap();
        assert!(started.elapsed() < Duration::from_secs(5));
        assert!(!report.all_final());
        assert!(f.latest().is_some());
    }

    #[test]
    fn bad_energy_budget_is_rejected() {
        let mut pb = PipelineBuilder::new();
        let _ = pb.source(
            "f",
            (),
            slow_counter(1, Duration::ZERO),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        assert!(matches!(
            auto.run_for_energy(1.0, 0.0),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn stop_and_join_is_not_an_error() {
        let mut pb = PipelineBuilder::new();
        let _f = pb.source(
            "f",
            (),
            slow_counter(1_000_000, Duration::from_micros(50)),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let report = auto.stop_and_join().unwrap();
        assert!(!report.all_final());
        assert_eq!(report.stages[0].end, StageEnd::Stopped);
    }

    /// Counts to `n`, panicking once at step `panic_at`.
    fn flaky_counter(n: u64, panic_at: u64) -> Diffusive<(), u64> {
        let mut armed = true;
        Diffusive::new(
            move |_: &()| 0u64,
            move |_: &(), out: &mut u64, step| {
                if armed && step == panic_at {
                    armed = false;
                    panic!("transient fault at step {step}");
                }
                *out += 1;
                if step + 1 == n {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            },
        )
    }

    #[test]
    fn restart_policy_recovers_to_precise_output() {
        use crate::supervisor::Supervision;
        let mut pb = PipelineBuilder::new();
        let f = pb.source(
            "f",
            (),
            flaky_counter(10, 4),
            StageOptions::default().supervise(Supervision::restart(2, Duration::ZERO)),
        );
        let report = pb.build().launch().unwrap().join().unwrap();
        assert!(report.all_final());
        assert_eq!(report.stages[0].restarts, 1);
        assert_eq!(report.faults.restarts, 1);
        assert_eq!(report.faults.permanent_failures, 0);
        let snap = f.latest().unwrap();
        assert!(snap.is_final());
        assert_eq!(*snap.value(), 10);
    }

    #[test]
    fn exhausted_restarts_are_a_permanent_failure() {
        use crate::supervisor::Supervision;
        // Panics every run: one allowed restart is not enough.
        let mut pb = PipelineBuilder::new();
        let _f = pb.source(
            "f",
            (),
            Diffusive::new(
                |_: &()| 0u64,
                |_: &(), _: &mut u64, _| -> StepOutcome { panic!("hard fault") },
            ),
            StageOptions::default().supervise(Supervision::restart(1, Duration::ZERO)),
        );
        let auto = pb.build().launch().unwrap();
        let stats_err = auto.join().unwrap_err();
        assert!(matches!(stats_err, CoreError::StagePanicked { .. }));
    }

    #[test]
    fn degrade_policy_seals_last_approximation() {
        use crate::supervisor::Supervision;
        let mut pb = PipelineBuilder::new();
        // Dies at step 4 having published approximations 1..=4.
        let f = pb.source(
            "f",
            (),
            flaky_counter(100, 4),
            StageOptions::default().supervise(Supervision::degrade()),
        );
        let _g = pb.stage("g", &f, Precise::new(|i: &u64| *i), StageOptions::default());
        let report = pb.build().launch().unwrap().join().unwrap();
        assert!(report.any_degraded());
        assert!(!report.all_final());
        assert_eq!(report.faults.degradations, 1);
        let snap = f.latest().unwrap();
        assert!(snap.is_degraded());
        assert_eq!(*snap.value(), 4);
        // wait_final* resolves (to the degraded version) instead of erroring.
        let got = f.wait_final_timeout(Duration::from_secs(5)).unwrap();
        assert!(got.is_degraded());
    }

    #[test]
    fn degrade_with_nothing_published_falls_back_to_fail_stop() {
        use crate::supervisor::Supervision;
        let mut pb = PipelineBuilder::new();
        let _f = pb.source(
            "f",
            (),
            Diffusive::new(
                |_: &()| 0u64,
                |_: &(), _: &mut u64, _| -> StepOutcome { panic!("died before publishing") },
            ),
            StageOptions::default().supervise(Supervision::degrade()),
        );
        let err = pb.build().launch().unwrap().join().unwrap_err();
        assert!(matches!(err, CoreError::StagePanicked { .. }));
    }

    #[test]
    fn fail_fast_stops_healthy_stages() {
        let mut pb = PipelineBuilder::new();
        let _bad = pb.source(
            "bad",
            (),
            Diffusive::new(
                |_: &()| 0u64,
                |_: &(), _: &mut u64, _| -> StepOutcome { panic!("early death") },
            ),
            StageOptions::default(),
        );
        let slow = pb.source(
            "slow",
            (),
            slow_counter(1_000_000, Duration::from_micros(100)),
            StageOptions::default(),
        );
        let started = Instant::now();
        let err = pb.build().fail_fast().launch().unwrap().join().unwrap_err();
        assert!(matches!(err, CoreError::StagePanicked { .. }));
        // Without fail-fast the slow stage would run for ~100 s.
        assert!(started.elapsed() < Duration::from_secs(20));
        assert!(!slow.is_final());
    }

    #[test]
    fn panic_report_carries_step_count() {
        let mut pb = PipelineBuilder::new();
        let _f = pb.source("f", (), flaky_counter(10, 3), StageOptions::default());
        let err = pb.build().launch().unwrap().join().unwrap_err();
        match err {
            CoreError::StagePanicked {
                stage,
                message,
                steps_at_death,
            } => {
                assert_eq!(stage, "f");
                assert_eq!(steps_at_death, 3);
                assert!(message.unwrap().contains("transient fault"));
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn watchdog_degrades_a_stalled_stage() {
        use crate::supervisor::StallAction;
        let mut pb = PipelineBuilder::new();
        // Publishes a few versions quickly, then hangs far longer than the
        // heartbeat.
        let f = pb.source(
            "f",
            (),
            Diffusive::new(
                |_: &()| 0u64,
                |_: &(), out: &mut u64, step| {
                    if step == 3 {
                        std::thread::sleep(Duration::from_millis(1_500));
                    }
                    *out += 1;
                    if step + 1 == 1_000_000 {
                        StepOutcome::Done
                    } else {
                        StepOutcome::Continue
                    }
                },
            ),
            StageOptions::default().watchdog(Duration::from_millis(150), StallAction::Degrade),
        );
        let g = pb.stage("g", &f, Precise::new(|i: &u64| *i), StageOptions::default());
        let auto = pb.build().launch().unwrap();
        // Downstream completes (degraded) without waiting out the stall.
        let snap = f.wait_final_timeout(Duration::from_secs(30)).unwrap();
        assert!(snap.is_degraded());
        let got = g.wait_final_timeout(Duration::from_secs(30)).unwrap();
        assert!(got.is_degraded());
        let stats = auto.fault_stats();
        assert!(stats.stalls >= 1, "stall not recorded: {stats:?}");
        assert_eq!(stats.degradations, 1);
        auto.stop();
        let report = auto.join().unwrap();
        assert!(report.any_degraded());
        assert!(report.faults.dropped_publishes >= 1);
    }

    #[test]
    fn debug_impl_nonempty() {
        let mut pb = PipelineBuilder::new();
        let _f = pb.source(
            "f",
            (),
            slow_counter(1, Duration::ZERO),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        assert!(!format!("{auto:?}").is_empty());
        auto.join().unwrap();
    }
}
