use crate::buffer::BufferControl;
use crate::control::ControlToken;
use crate::error::{CoreError, Result};
use crate::metrics::{self, FaultCounters, FaultStats, WaitStats};
use crate::notify::{lock_unpoisoned, WaitSet, WakeTarget};
use crate::observe::MetricStats;
use crate::runtime::{RtTask, RuntimeHandle, TaskPoll};
use crate::stage::{PollCx, StageEnd, StagePoll, StageRunner};
use crate::supervisor::{self, FailurePolicy, Supervision, WatchedStage};
use crate::trace::{EventKind, Recorder, StageId, TraceLog};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where a stage task deposits its outcome — how the stage ended (or
/// failed) plus the number of supervised restarts — before it signals
/// completion. The executor-side replacement for a driver thread's
/// join-handle return value.
type StageSlot = Arc<Mutex<Option<(Result<StageEnd>, u32)>>>;

/// One stage's lifecycle as a schedulable task: wraps the type-erased
/// [`StageRunner`] with the supervision loop a dedicated driver thread
/// used to host — panic fencing, restart accounting and backoff,
/// degraded sealing, fail-fast propagation, and result delivery.
///
/// The stage's *work* (stepping, publishing, yielding at publish points)
/// lives in [`StageRunner::poll`]; this wrapper only translates outcomes:
/// `StagePoll` verdicts map onto [`TaskPoll`], panics map onto the
/// configured [`FailurePolicy`], and restart backoff becomes a
/// [`TaskPoll::PendingUntil`] timer instead of a sleeping thread.
struct StageTask {
    name: String,
    /// `None` once finished: dropping the runner closes its output buffer
    /// *before* completion is signalled, so downstream readers observe
    /// the terminal version or a close, never a silent stall.
    runner: Option<Box<dyn StageRunner>>,
    supervision: Supervision,
    control: Option<Arc<dyn BufferControl>>,
    ctl: ControlToken,
    fail_fast: bool,
    counters: Arc<FaultCounters>,
    recorder: Recorder,
    stage: StageId,
    restarts: u32,
    slot: StageSlot,
    finished: Arc<AtomicUsize>,
    done_ws: WaitSet,
}

impl StageTask {
    /// Permanent-failure handling per policy, then result delivery.
    /// Sealing happens before the runner is dropped (which closes the
    /// buffer) so downstream readers observe the degraded terminal
    /// version, never a bare close.
    fn finish(&mut self, result: Result<StageEnd>) -> TaskPoll {
        let result = match result {
            Err(e) => {
                // Count before sealing: the seal wakes waiters, and one of
                // them may read the fault stats before this task runs
                // again. The seal succeeds whenever a version was published
                // (it is idempotent past terminal), so gate on that.
                let sealable = self.supervision.policy == FailurePolicy::Degrade
                    && self
                        .control
                        .as_ref()
                        .is_some_and(|c| c.latest_version().is_some());
                if sealable {
                    self.counters.record_degradation();
                    if let Some(c) = self.control.as_ref() {
                        c.seal_degraded();
                    }
                    Ok(StageEnd::Degraded)
                } else {
                    self.counters.record_permanent_failure();
                    self.recorder
                        .stage_event(EventKind::PermanentFailure, self.stage);
                    if self.fail_fast {
                        self.ctl.stop();
                    }
                    Err(e)
                }
            }
            ok => ok,
        };
        // Dropping the runner closes its output buffer, so dependent
        // stages observe SourceClosed instead of blocking forever.
        self.runner = None;
        *lock_unpoisoned(&self.slot) = Some((result, self.restarts));
        self.finished.fetch_add(1, Ordering::Release);
        self.done_ws.wake();
        TaskPoll::Ready
    }
}

impl RtTask for StageTask {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, wake: &Arc<dyn WakeTarget>, credits: u64) -> TaskPoll {
        let Some(runner) = self.runner.as_mut() else {
            return TaskPoll::Ready;
        };
        let mut cx = PollCx {
            ctl: &self.ctl,
            wake,
            budget: credits,
        };
        match catch_unwind(AssertUnwindSafe(|| runner.poll(&mut cx))) {
            Ok(StagePoll::Yielded) => TaskPoll::Yielded,
            Ok(StagePoll::Pending) => TaskPoll::Pending,
            Ok(StagePoll::Ready(result)) => {
                // The watchdog may have sealed the buffer degraded while
                // the driver kept going; surface that in the outcome.
                let result = match (&result, &self.control) {
                    (Ok(StageEnd::Final), Some(c)) if c.is_degraded() => Ok(StageEnd::Degraded),
                    _ => result,
                };
                self.finish(result)
            }
            Err(payload) => {
                let err = CoreError::StagePanicked {
                    stage: self.name.clone(),
                    message: panic_message(payload.as_ref()),
                    steps_at_death: self.runner.as_ref().map_or(0, |r| r.steps_completed()),
                };
                if let FailurePolicy::Restart {
                    max_attempts,
                    backoff,
                } = self.supervision.policy
                {
                    if self.restarts < max_attempts {
                        self.restarts += 1;
                        self.counters.record_restart();
                        self.recorder.stage_event(EventKind::Restart, self.stage);
                        // The runner's dirty-run bookkeeping discards
                        // whatever the panic left half-mutated on the next
                        // poll; a stop during the backoff wakes the task
                        // early through its control subscription.
                        return if backoff.is_zero() {
                            TaskPoll::Yielded
                        } else {
                            TaskPoll::PendingUntil(Instant::now() + backoff)
                        };
                    }
                }
                // Driver errors (closed upstream, …) and exhausted restart
                // budgets are permanent: restarting cannot resurrect a
                // dead input.
                self.finish(Err(err))
            }
        }
    }
}

/// A running anytime automaton: every stage scheduled as a task on a
/// shared [`crate::runtime::Runtime`] worker pool, all sharing a
/// [`ControlToken`].
///
/// The automaton embodies the model's two key guarantees:
///
/// - **Early availability**: every stage's output buffer holds a complete
///   approximate output shortly after launch, improving with time.
/// - **Interruptibility**: [`Automaton::stop`] halts all stages at the next
///   step boundary, leaving the latest published outputs readable. If never
///   stopped, every stage eventually publishes its precise output and the
///   automaton finishes on its own.
///
/// "Hold-the-power-button computing" (paper §I): run the automaton while the
/// user holds the button, stop when they release it.
pub struct Automaton {
    ctl: ControlToken,
    /// Per-stage result slots, in stage-construction order; each is
    /// filled by its [`StageTask`] before `finished` is bumped.
    stages: Vec<(String, StageSlot)>,
    started: Instant,
    /// Stage tasks that have finished driving; woken through `done_ws`.
    finished: Arc<AtomicUsize>,
    /// Wait set bumped by every finishing stage task, so completion
    /// waits ([`Automaton::run_for`]) block instead of polling.
    done_ws: WaitSet,
    /// Fault-handling counters shared with stage tasks and the watchdog.
    counters: Arc<FaultCounters>,
    /// Control handles to every stage output buffer, for aggregating
    /// dropped-publish counts into the end-state report.
    controls: Vec<Arc<dyn BufferControl>>,
    /// The progress-watchdog thread, if any stage configured one.
    watchdog: Option<JoinHandle<()>>,
    /// The trace recorder shared with every stage task (no-op when
    /// tracing is disabled).
    recorder: Recorder,
    /// The runtime the stage tasks are scheduled on.
    runtime: RuntimeHandle,
}

impl Automaton {
    pub(crate) fn spawn(
        runners: Vec<Box<dyn StageRunner>>,
        ctl: ControlToken,
        fail_fast: bool,
        recorder: Recorder,
        runtime: RuntimeHandle,
        credits: Option<Vec<u64>>,
    ) -> Result<Automaton> {
        let started = Instant::now();
        let finished = Arc::new(AtomicUsize::new(0));
        let done_ws = WaitSet::new();
        let counters = Arc::new(FaultCounters::default());
        let total_stages = runners.len();
        let mut controls = Vec::new();
        let mut watched = Vec::new();
        for runner in &runners {
            if let Some(control) = runner.output_control() {
                if let Some(cfg) = runner.supervision().watchdog {
                    watched.push(WatchedStage {
                        control: Arc::clone(&control),
                        cfg,
                        stage: recorder.stage(runner.name()),
                    });
                }
                controls.push(control);
            }
        }
        let mut stages = Vec::with_capacity(total_stages);
        for (i, runner) in runners.into_iter().enumerate() {
            let name = runner.name().to_string();
            let slot: StageSlot = Arc::new(Mutex::new(None));
            let task = StageTask {
                supervision: runner.supervision(),
                control: runner.output_control(),
                stage: recorder.stage(&name),
                name: name.clone(),
                runner: Some(runner),
                ctl: ctl.clone(),
                fail_fast,
                counters: Arc::clone(&counters),
                recorder: recorder.clone(),
                restarts: 0,
                slot: Arc::clone(&slot),
                finished: Arc::clone(&finished),
                done_ws: done_ws.clone(),
            };
            let credit = credits
                .as_ref()
                .and_then(|c| c.get(i).copied())
                .unwrap_or(1)
                .max(1);
            runtime.spawn_task(Box::new(task), credit);
            stages.push((name, slot));
        }
        let watchdog = if watched.is_empty() {
            None
        } else {
            Some(
                supervisor::spawn_watchdog(
                    watched,
                    ctl.clone(),
                    Arc::clone(&counters),
                    Arc::clone(&finished),
                    total_stages,
                    done_ws.clone(),
                    recorder.clone(),
                )
                .map_err(|e| {
                    CoreError::InvalidConfig(format!("failed to spawn supervisor thread: {e}"))
                })?,
            )
        };
        Ok(Automaton {
            ctl,
            stages,
            started,
            finished,
            done_ws,
            counters,
            controls,
            watchdog,
            recorder,
            runtime,
        })
    }

    /// Handle to the runtime this automaton's stage tasks run on, e.g.
    /// for reading [`crate::runtime::RuntimeStats`] scheduling counters.
    pub fn runtime(&self) -> &RuntimeHandle {
        &self.runtime
    }

    /// The trace recorder this automaton publishes events through. A no-op
    /// handle unless the pipeline was built with
    /// [`crate::PipelineBuilder::with_recorder`].
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Drains and returns the trace events accumulated so far (empty when
    /// tracing is disabled). Safe to call while the automaton runs; each
    /// call returns only events since the previous drain.
    pub fn trace(&self) -> TraceLog {
        self.recorder.drain()
    }

    /// A clone of the shared control token.
    pub fn control(&self) -> ControlToken {
        self.ctl.clone()
    }

    /// Requests all stages stop at their next step boundary.
    pub fn stop(&self) {
        self.ctl.stop();
    }

    /// Pauses all stages at their next step boundary.
    pub fn pause(&self) {
        self.ctl.pause();
    }

    /// Resumes a paused automaton.
    pub fn resume(&self) {
        self.ctl.resume();
    }

    /// `true` once every stage task has finished (all stages final,
    /// stopped, or failed).
    pub fn is_done(&self) -> bool {
        self.finished.load(Ordering::Acquire) == self.stages.len()
    }

    /// Time since launch.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// A point-in-time view of the run's fault handling: restarts, stalls,
    /// degradations, permanent failures, and dropped publications.
    pub fn fault_stats(&self) -> FaultStats {
        let mut stats = self.counters.snapshot();
        stats.dropped_publishes = self.controls.iter().map(|c| c.dropped_publishes()).sum();
        stats
    }

    /// Waits for all stages to finish and reports how each ended.
    ///
    /// # Errors
    ///
    /// Returns the first stage error encountered (panic, closed upstream).
    /// A [`StageEnd::Stopped`] outcome is not an error.
    pub fn join(self) -> Result<RunReport> {
        // Block (event-driven, via the epoch protocol) until every stage
        // task has deposited its result and bumped `finished`.
        loop {
            let seen = self.done_ws.epoch();
            if self.is_done() {
                break;
            }
            self.done_ws.wait(seen);
        }
        let started = self.started;
        let mut stages = Vec::with_capacity(self.stages.len());
        let mut first_err = None;
        for (name, slot) in &self.stages {
            match lock_unpoisoned(slot).take() {
                Some((Ok(end), restarts)) => stages.push(StageReport {
                    name: name.clone(),
                    end,
                    restarts,
                    waits: WaitStats::default(),
                }),
                Some((Err(e), _)) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
                // Unreachable: `finished == total` implies every slot is
                // filled. Kept as an error rather than a panic so a
                // runtime bug degrades to a report instead of an abort.
                None => {
                    if first_err.is_none() {
                        first_err = Some(CoreError::StagePanicked {
                            stage: name.clone(),
                            message: None,
                            steps_at_death: 0,
                        });
                    }
                }
            }
        }
        // Every stage task has finished, so the supervisor observes
        // `finished == total` and returns promptly.
        if let Some(wd) = self.watchdog {
            let _ = wd.join();
        }
        // Every stage task has finished, so the per-buffer wait counters
        // are final; attach them to the matching stage reports.
        for stage in &mut stages {
            if let Some(c) = self.controls.iter().find(|c| c.buffer_name() == stage.name) {
                stage.waits = c.wait_stats();
            }
        }
        let mut faults = self.counters.snapshot();
        faults.dropped_publishes = self.controls.iter().map(|c| c.dropped_publishes()).sum();
        match first_err {
            Some(e) => Err(e),
            None => Ok(RunReport {
                elapsed: started.elapsed(),
                stages,
                faults,
            }),
        }
    }

    /// Runs until all stages finish or `budget` elapses, then stops and
    /// joins — the contract-style usage where a hard time budget governs
    /// output quality.
    ///
    /// # Errors
    ///
    /// Propagates stage failures, as [`Automaton::join`].
    pub fn run_for(self, budget: Duration) -> Result<RunReport> {
        let deadline = Instant::now() + budget;
        self.wait_done_deadline(deadline);
        self.stop();
        self.join()
    }

    /// Blocks until every stage thread has exited or `deadline` passes,
    /// whichever comes first. Returns `true` if the automaton finished.
    ///
    /// Event-driven: each finishing stage bumps `done_ws`, so this wait
    /// wakes on stage exits or the exact deadline — no polling loop. The
    /// automaton keeps running either way; this is the observation a
    /// deadline-bound caller (e.g. the serving layer) makes before
    /// deciding to take the current best snapshot and stop the run.
    pub fn wait_done_deadline(&self, deadline: Instant) -> bool {
        loop {
            let seen = self.done_ws.epoch();
            if self.is_done() {
                return true;
            }
            if !self.done_ws.wait_deadline(seen, deadline) {
                return self.is_done();
            }
        }
    }

    /// Runs until all stages finish or an **energy** budget is exhausted,
    /// then stops and joins — hold-the-power-button computing with the
    /// budget in joules instead of seconds.
    ///
    /// `power_w` is the machine's draw while the automaton runs (e.g. from
    /// an `anytime_sim::EnergyModel`); the budget converts to a wall-clock
    /// deadline of `budget_j / power_w` seconds.
    ///
    /// # Errors
    ///
    /// Propagates stage failures, as [`Automaton::join`]. Returns
    /// [`CoreError::InvalidConfig`] if `power_w` is not positive and
    /// finite.
    pub fn run_for_energy(self, budget_j: f64, power_w: f64) -> Result<RunReport> {
        let power_ok = power_w.is_finite() && power_w > 0.0;
        let budget_ok = budget_j.is_finite() && budget_j >= 0.0;
        if !power_ok || !budget_ok {
            return Err(CoreError::InvalidConfig(
                "energy budget and power must be positive and finite".into(),
            ));
        }
        self.run_for(Duration::from_secs_f64(budget_j / power_w))
    }

    /// Stops immediately and joins.
    ///
    /// # Errors
    ///
    /// Propagates stage failures, as [`Automaton::join`].
    pub fn stop_and_join(self) -> Result<RunReport> {
        self.stop();
        self.join()
    }
}

impl fmt::Debug for Automaton {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Automaton")
            .field("stages", &self.stages.len())
            .field("elapsed", &self.elapsed())
            .field("done", &self.is_done())
            .finish()
    }
}

/// How every stage of a finished automaton ended.
#[derive(Debug)]
pub struct RunReport {
    /// Wall-clock time from launch to the last stage exit.
    pub elapsed: Duration,
    /// Per-stage outcomes, in stage-construction order.
    pub stages: Vec<StageReport>,
    /// Fault handling over the whole run: restarts, stalls, degradations,
    /// permanent failures, dropped publications.
    pub faults: FaultStats,
}

impl RunReport {
    /// `true` if every stage delivered its precise output.
    pub fn all_final(&self) -> bool {
        self.stages.iter().all(|s| s.end == StageEnd::Final)
    }

    /// `true` if any stage ended with a degraded (approximate terminal)
    /// output.
    pub fn any_degraded(&self) -> bool {
        self.stages.iter().any(|s| s.end == StageEnd::Degraded)
    }

    /// Aggregate buffer-wait statistics across every stage, folded with
    /// [`crate::observe::MetricStats::absorb`].
    pub fn total_waits(&self) -> WaitStats {
        let mut total = WaitStats::default();
        for s in &self.stages {
            total.absorb(&s.waits);
        }
        total
    }

    /// Renders the report's metrics — fault counters plus aggregate wait
    /// statistics — in Prometheus text exposition format, sharing families
    /// with the live [`crate::observe::Observe`] renderers.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let _ = metrics::render_fault_stats(&mut out, &self.faults, &[]);
        let _ = metrics::render_wait_stats(&mut out, &self.total_waits(), &[]);
        out
    }
}

/// One stage's outcome in a [`RunReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageReport {
    /// The stage name.
    pub name: String,
    /// How the stage's driver ended.
    pub end: StageEnd,
    /// Times the stage's driver was restarted after a panic.
    pub restarts: u32,
    /// Wait/wake statistics for the stage's output buffer over the run.
    pub waits: WaitStats,
}

/// Renders a panic payload when it was a string; `None` for opaque
/// payloads, which [`CoreError::StagePanicked`] reports as such instead of
/// inventing text. Shared with the serve layer's `catch_unwind` fences
/// (`CoreError::ReplicaPanicked`).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> Option<String> {
    if let Some(s) = payload.downcast_ref::<&str>() {
        Some((*s).to_string())
    } else {
        payload.downcast_ref::<String>().cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diffusive::Diffusive;
    use crate::pipeline::PipelineBuilder;
    use crate::precise::Precise;
    use crate::stage::{StageOptions, StepOutcome};

    fn slow_counter(n: u64, delay: Duration) -> Diffusive<(), u64> {
        Diffusive::new(
            move |_: &()| 0u64,
            move |_: &(), out: &mut u64, step| {
                std::thread::sleep(delay);
                *out += 1;
                if step + 1 == n {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            },
        )
    }

    #[test]
    fn join_reports_all_final() {
        let mut pb = PipelineBuilder::new();
        let f = pb.source(
            "f",
            (),
            slow_counter(5, Duration::ZERO),
            StageOptions::default(),
        );
        let _g = pb.stage("g", &f, Precise::new(|i: &u64| *i), StageOptions::default());
        let report = pb.build().launch().unwrap().join().unwrap();
        assert!(report.all_final());
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.stages[0].name, "f");
    }

    #[test]
    fn run_for_interrupts_long_computation() {
        let mut pb = PipelineBuilder::new();
        let f = pb.source(
            "f",
            (),
            slow_counter(100_000, Duration::from_millis(1)),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        let report = auto.run_for(Duration::from_millis(50)).unwrap();
        assert!(!report.all_final());
        // The interrupted stage still produced a valid approximate output.
        let snap = f.latest().expect("approximate output available");
        assert!(*snap.value() > 0);
        assert!(!snap.is_final());
    }

    #[test]
    fn run_for_returns_early_when_done() {
        let mut pb = PipelineBuilder::new();
        let _f = pb.source(
            "f",
            (),
            slow_counter(3, Duration::ZERO),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        let started = Instant::now();
        let report = auto.run_for(Duration::from_secs(30)).unwrap();
        assert!(report.all_final());
        assert!(started.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn panicking_stage_is_reported_and_does_not_hang_children() {
        let mut pb = PipelineBuilder::new();
        let f = pb.source(
            "bad",
            (),
            Precise::new(|_: &()| -> u64 { panic!("stage exploded") }),
            StageOptions::default(),
        );
        let _g = pb.stage("g", &f, Precise::new(|i: &u64| *i), StageOptions::default());
        let err = pb.build().launch().unwrap().join().unwrap_err();
        match err {
            CoreError::StagePanicked { stage, message, .. } => {
                assert_eq!(stage, "bad");
                assert!(message.unwrap().contains("exploded"));
            }
            CoreError::SourceClosed { .. } => {
                // Acceptable: the child error may be collected first.
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn pause_and_resume_round_trip() {
        let mut pb = PipelineBuilder::new();
        let f = pb.source(
            "f",
            (),
            slow_counter(10_000, Duration::from_micros(100)),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        std::thread::sleep(Duration::from_millis(20));
        auto.pause();
        std::thread::sleep(Duration::from_millis(10)); // let stages reach the checkpoint
        let frozen = f.latest().map(|s| s.version());
        std::thread::sleep(Duration::from_millis(30));
        let still = f.latest().map(|s| s.version());
        assert_eq!(frozen, still, "output advanced while paused");
        auto.resume();
        std::thread::sleep(Duration::from_millis(30));
        let after = f.latest().map(|s| s.version());
        assert!(after > still, "output did not advance after resume");
        auto.stop_and_join().unwrap();
    }

    #[test]
    fn energy_budget_bounds_runtime() {
        let mut pb = PipelineBuilder::new();
        let f = pb.source(
            "f",
            (),
            slow_counter(1_000_000, Duration::from_micros(100)),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        // 100 W machine, 3 J budget -> ~30 ms.
        let started = Instant::now();
        let report = auto.run_for_energy(3.0, 100.0).unwrap();
        assert!(started.elapsed() < Duration::from_secs(5));
        assert!(!report.all_final());
        assert!(f.latest().is_some());
    }

    #[test]
    fn bad_energy_budget_is_rejected() {
        let mut pb = PipelineBuilder::new();
        let _ = pb.source(
            "f",
            (),
            slow_counter(1, Duration::ZERO),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        assert!(matches!(
            auto.run_for_energy(1.0, 0.0),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn stop_and_join_is_not_an_error() {
        let mut pb = PipelineBuilder::new();
        let _f = pb.source(
            "f",
            (),
            slow_counter(1_000_000, Duration::from_micros(50)),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let report = auto.stop_and_join().unwrap();
        assert!(!report.all_final());
        assert_eq!(report.stages[0].end, StageEnd::Stopped);
    }

    /// Counts to `n`, panicking once at step `panic_at`.
    fn flaky_counter(n: u64, panic_at: u64) -> Diffusive<(), u64> {
        let mut armed = true;
        Diffusive::new(
            move |_: &()| 0u64,
            move |_: &(), out: &mut u64, step| {
                if armed && step == panic_at {
                    armed = false;
                    panic!("transient fault at step {step}");
                }
                *out += 1;
                if step + 1 == n {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            },
        )
    }

    #[test]
    fn restart_policy_recovers_to_precise_output() {
        use crate::supervisor::Supervision;
        let mut pb = PipelineBuilder::new();
        let f = pb.source(
            "f",
            (),
            flaky_counter(10, 4),
            StageOptions::default().supervise(Supervision::restart(2, Duration::ZERO)),
        );
        let report = pb.build().launch().unwrap().join().unwrap();
        assert!(report.all_final());
        assert_eq!(report.stages[0].restarts, 1);
        assert_eq!(report.faults.restarts, 1);
        assert_eq!(report.faults.permanent_failures, 0);
        let snap = f.latest().unwrap();
        assert!(snap.is_final());
        assert_eq!(*snap.value(), 10);
    }

    #[test]
    fn exhausted_restarts_are_a_permanent_failure() {
        use crate::supervisor::Supervision;
        // Panics every run: one allowed restart is not enough.
        let mut pb = PipelineBuilder::new();
        let _f = pb.source(
            "f",
            (),
            Diffusive::new(
                |_: &()| 0u64,
                |_: &(), _: &mut u64, _| -> StepOutcome { panic!("hard fault") },
            ),
            StageOptions::default().supervise(Supervision::restart(1, Duration::ZERO)),
        );
        let auto = pb.build().launch().unwrap();
        let stats_err = auto.join().unwrap_err();
        assert!(matches!(stats_err, CoreError::StagePanicked { .. }));
    }

    #[test]
    fn degrade_policy_seals_last_approximation() {
        use crate::supervisor::Supervision;
        let mut pb = PipelineBuilder::new();
        // Dies at step 4 having published approximations 1..=4.
        let f = pb.source(
            "f",
            (),
            flaky_counter(100, 4),
            StageOptions::default().supervise(Supervision::degrade()),
        );
        let _g = pb.stage("g", &f, Precise::new(|i: &u64| *i), StageOptions::default());
        let report = pb.build().launch().unwrap().join().unwrap();
        assert!(report.any_degraded());
        assert!(!report.all_final());
        assert_eq!(report.faults.degradations, 1);
        let snap = f.latest().unwrap();
        assert!(snap.is_degraded());
        assert_eq!(*snap.value(), 4);
        // wait_final* resolves (to the degraded version) instead of erroring.
        let got = f.wait_final_timeout(Duration::from_secs(5)).unwrap();
        assert!(got.is_degraded());
    }

    #[test]
    fn degrade_with_nothing_published_falls_back_to_fail_stop() {
        use crate::supervisor::Supervision;
        let mut pb = PipelineBuilder::new();
        let _f = pb.source(
            "f",
            (),
            Diffusive::new(
                |_: &()| 0u64,
                |_: &(), _: &mut u64, _| -> StepOutcome { panic!("died before publishing") },
            ),
            StageOptions::default().supervise(Supervision::degrade()),
        );
        let err = pb.build().launch().unwrap().join().unwrap_err();
        assert!(matches!(err, CoreError::StagePanicked { .. }));
    }

    #[test]
    fn fail_fast_stops_healthy_stages() {
        let mut pb = PipelineBuilder::new();
        let _bad = pb.source(
            "bad",
            (),
            Diffusive::new(
                |_: &()| 0u64,
                |_: &(), _: &mut u64, _| -> StepOutcome { panic!("early death") },
            ),
            StageOptions::default(),
        );
        let slow = pb.source(
            "slow",
            (),
            slow_counter(1_000_000, Duration::from_micros(100)),
            StageOptions::default(),
        );
        let started = Instant::now();
        let err = pb
            .with_fail_fast()
            .build()
            .launch()
            .unwrap()
            .join()
            .unwrap_err();
        assert!(matches!(err, CoreError::StagePanicked { .. }));
        // Without fail-fast the slow stage would run for ~100 s.
        assert!(started.elapsed() < Duration::from_secs(20));
        assert!(!slow.is_final());
    }

    #[test]
    fn panic_report_carries_step_count() {
        let mut pb = PipelineBuilder::new();
        let _f = pb.source("f", (), flaky_counter(10, 3), StageOptions::default());
        let err = pb.build().launch().unwrap().join().unwrap_err();
        match err {
            CoreError::StagePanicked {
                stage,
                message,
                steps_at_death,
            } => {
                assert_eq!(stage, "f");
                assert_eq!(steps_at_death, 3);
                assert!(message.unwrap().contains("transient fault"));
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn watchdog_degrades_a_stalled_stage() {
        use crate::supervisor::StallAction;
        let mut pb = PipelineBuilder::new();
        // Publishes a few versions quickly, then hangs far longer than the
        // heartbeat.
        let f = pb.source(
            "f",
            (),
            Diffusive::new(
                |_: &()| 0u64,
                |_: &(), out: &mut u64, step| {
                    if step == 3 {
                        std::thread::sleep(Duration::from_millis(1_500));
                    }
                    *out += 1;
                    if step + 1 == 1_000_000 {
                        StepOutcome::Done
                    } else {
                        StepOutcome::Continue
                    }
                },
            ),
            StageOptions::default().watchdog(Duration::from_millis(150), StallAction::Degrade),
        );
        let g = pb.stage("g", &f, Precise::new(|i: &u64| *i), StageOptions::default());
        let auto = pb.build().launch().unwrap();
        // Downstream completes (degraded) without waiting out the stall.
        let snap = f.wait_final_timeout(Duration::from_secs(30)).unwrap();
        assert!(snap.is_degraded());
        let got = g.wait_final_timeout(Duration::from_secs(30)).unwrap();
        assert!(got.is_degraded());
        let stats = auto.fault_stats();
        assert!(stats.stalls >= 1, "stall not recorded: {stats:?}");
        assert_eq!(stats.degradations, 1);
        auto.stop();
        let report = auto.join().unwrap();
        assert!(report.any_degraded());
        assert!(report.faults.dropped_publishes >= 1);
    }

    #[test]
    fn debug_impl_nonempty() {
        let mut pb = PipelineBuilder::new();
        let _f = pb.source(
            "f",
            (),
            slow_counter(1, Duration::ZERO),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        assert!(!format!("{auto:?}").is_empty());
        auto.join().unwrap();
    }
}
