use crate::control::ControlToken;
use crate::error::{CoreError, Result};
use crate::notify::WaitSet;
use crate::stage::{StageEnd, StageRunner};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A running anytime automaton: one driver thread per stage, all sharing a
/// [`ControlToken`].
///
/// The automaton embodies the model's two key guarantees:
///
/// - **Early availability**: every stage's output buffer holds a complete
///   approximate output shortly after launch, improving with time.
/// - **Interruptibility**: [`Automaton::stop`] halts all stages at the next
///   step boundary, leaving the latest published outputs readable. If never
///   stopped, every stage eventually publishes its precise output and the
///   automaton finishes on its own.
///
/// "Hold-the-power-button computing" (paper §I): run the automaton while the
/// user holds the button, stop when they release it.
pub struct Automaton {
    ctl: ControlToken,
    threads: Vec<(String, JoinHandle<Result<StageEnd>>)>,
    started: Instant,
    /// Stage threads that have finished driving; woken through `done_ws`.
    finished: Arc<AtomicUsize>,
    /// Wait set bumped by every finishing stage thread, so completion
    /// waits ([`Automaton::run_for`]) block instead of polling.
    done_ws: WaitSet,
}

impl Automaton {
    pub(crate) fn spawn(
        runners: Vec<Box<dyn StageRunner>>,
        ctl: ControlToken,
    ) -> Result<Automaton> {
        let started = Instant::now();
        let finished = Arc::new(AtomicUsize::new(0));
        let done_ws = WaitSet::new();
        let mut threads = Vec::with_capacity(runners.len());
        for mut runner in runners {
            let name = runner.name().to_string();
            let thread_ctl = ctl.clone();
            let thread_finished = Arc::clone(&finished);
            let thread_done_ws = done_ws.clone();
            let handle = std::thread::Builder::new()
                .name(format!("anytime-{name}"))
                .spawn(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| runner.drive(&thread_ctl)));
                    // Dropping the runner here closes its output buffer, so
                    // dependent stages observe SourceClosed instead of
                    // blocking forever.
                    let stage = runner.name().to_string();
                    drop(runner);
                    let out = match result {
                        Ok(end) => end,
                        Err(payload) => Err(CoreError::StagePanicked {
                            stage,
                            message: panic_message(payload.as_ref()),
                        }),
                    };
                    thread_finished.fetch_add(1, Ordering::Release);
                    thread_done_ws.wake();
                    out
                })
                .map_err(|e| CoreError::InvalidConfig(format!("failed to spawn thread: {e}")))?;
            threads.push((name, handle));
        }
        Ok(Automaton {
            ctl,
            threads,
            started,
            finished,
            done_ws,
        })
    }

    /// A clone of the shared control token.
    pub fn control(&self) -> ControlToken {
        self.ctl.clone()
    }

    /// Requests all stages stop at their next step boundary.
    pub fn stop(&self) {
        self.ctl.stop();
    }

    /// Pauses all stages at their next step boundary.
    pub fn pause(&self) {
        self.ctl.pause();
    }

    /// Resumes a paused automaton.
    pub fn resume(&self) {
        self.ctl.resume();
    }

    /// `true` once every stage thread has exited (all stages final,
    /// stopped, or failed).
    pub fn is_done(&self) -> bool {
        self.finished.load(Ordering::Acquire) == self.threads.len()
    }

    /// Time since launch.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Waits for all stages to finish and reports how each ended.
    ///
    /// # Errors
    ///
    /// Returns the first stage error encountered (panic, closed upstream).
    /// A [`StageEnd::Stopped`] outcome is not an error.
    pub fn join(self) -> Result<RunReport> {
        let started = self.started;
        let mut stages = Vec::with_capacity(self.threads.len());
        let mut first_err = None;
        for (name, handle) in self.threads {
            match handle.join() {
                Ok(Ok(end)) => stages.push(StageReport { name, end }),
                Ok(Err(e)) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
                Err(payload) => {
                    if first_err.is_none() {
                        first_err = Some(CoreError::StagePanicked {
                            stage: name,
                            message: panic_message(payload.as_ref()),
                        });
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(RunReport {
                elapsed: started.elapsed(),
                stages,
            }),
        }
    }

    /// Runs until all stages finish or `budget` elapses, then stops and
    /// joins — the contract-style usage where a hard time budget governs
    /// output quality.
    ///
    /// # Errors
    ///
    /// Propagates stage failures, as [`Automaton::join`].
    pub fn run_for(self, budget: Duration) -> Result<RunReport> {
        let deadline = Instant::now() + budget;
        // Event-driven completion wait: each finishing stage bumps
        // `done_ws`, so this blocks until the last stage exits or the
        // exact deadline passes — no polling loop.
        loop {
            let seen = self.done_ws.epoch();
            if self.is_done() {
                break;
            }
            if !self.done_ws.wait_deadline(seen, deadline) {
                break;
            }
        }
        self.stop();
        self.join()
    }

    /// Runs until all stages finish or an **energy** budget is exhausted,
    /// then stops and joins — hold-the-power-button computing with the
    /// budget in joules instead of seconds.
    ///
    /// `power_w` is the machine's draw while the automaton runs (e.g. from
    /// an `anytime_sim::EnergyModel`); the budget converts to a wall-clock
    /// deadline of `budget_j / power_w` seconds.
    ///
    /// # Errors
    ///
    /// Propagates stage failures, as [`Automaton::join`]. Returns
    /// [`CoreError::InvalidConfig`] if `power_w` is not positive and
    /// finite.
    pub fn run_for_energy(self, budget_j: f64, power_w: f64) -> Result<RunReport> {
        let power_ok = power_w.is_finite() && power_w > 0.0;
        let budget_ok = budget_j.is_finite() && budget_j >= 0.0;
        if !power_ok || !budget_ok {
            return Err(CoreError::InvalidConfig(
                "energy budget and power must be positive and finite".into(),
            ));
        }
        self.run_for(Duration::from_secs_f64(budget_j / power_w))
    }

    /// Stops immediately and joins.
    ///
    /// # Errors
    ///
    /// Propagates stage failures, as [`Automaton::join`].
    pub fn stop_and_join(self) -> Result<RunReport> {
        self.stop();
        self.join()
    }
}

impl fmt::Debug for Automaton {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Automaton")
            .field("stages", &self.threads.len())
            .field("elapsed", &self.elapsed())
            .field("done", &self.is_done())
            .finish()
    }
}

/// How every stage of a finished automaton ended.
#[derive(Debug)]
pub struct RunReport {
    /// Wall-clock time from launch to the last stage exit.
    pub elapsed: Duration,
    /// Per-stage outcomes, in stage-construction order.
    pub stages: Vec<StageReport>,
}

impl RunReport {
    /// `true` if every stage delivered its precise output.
    pub fn all_final(&self) -> bool {
        self.stages.iter().all(|s| s.end == StageEnd::Final)
    }
}

/// One stage's outcome in a [`RunReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageReport {
    /// The stage name.
    pub name: String,
    /// How the stage's driver ended.
    pub end: StageEnd,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diffusive::Diffusive;
    use crate::pipeline::PipelineBuilder;
    use crate::precise::Precise;
    use crate::stage::{StageOptions, StepOutcome};

    fn slow_counter(n: u64, delay: Duration) -> Diffusive<(), u64> {
        Diffusive::new(
            move |_: &()| 0u64,
            move |_: &(), out: &mut u64, step| {
                std::thread::sleep(delay);
                *out += 1;
                if step + 1 == n {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            },
        )
    }

    #[test]
    fn join_reports_all_final() {
        let mut pb = PipelineBuilder::new();
        let f = pb.source(
            "f",
            (),
            slow_counter(5, Duration::ZERO),
            StageOptions::default(),
        );
        let _g = pb.stage("g", &f, Precise::new(|i: &u64| *i), StageOptions::default());
        let report = pb.build().launch().unwrap().join().unwrap();
        assert!(report.all_final());
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.stages[0].name, "f");
    }

    #[test]
    fn run_for_interrupts_long_computation() {
        let mut pb = PipelineBuilder::new();
        let f = pb.source(
            "f",
            (),
            slow_counter(100_000, Duration::from_millis(1)),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        let report = auto.run_for(Duration::from_millis(50)).unwrap();
        assert!(!report.all_final());
        // The interrupted stage still produced a valid approximate output.
        let snap = f.latest().expect("approximate output available");
        assert!(*snap.value() > 0);
        assert!(!snap.is_final());
    }

    #[test]
    fn run_for_returns_early_when_done() {
        let mut pb = PipelineBuilder::new();
        let _f = pb.source(
            "f",
            (),
            slow_counter(3, Duration::ZERO),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        let started = Instant::now();
        let report = auto.run_for(Duration::from_secs(30)).unwrap();
        assert!(report.all_final());
        assert!(started.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn panicking_stage_is_reported_and_does_not_hang_children() {
        let mut pb = PipelineBuilder::new();
        let f = pb.source(
            "bad",
            (),
            Precise::new(|_: &()| -> u64 { panic!("stage exploded") }),
            StageOptions::default(),
        );
        let _g = pb.stage("g", &f, Precise::new(|i: &u64| *i), StageOptions::default());
        let err = pb.build().launch().unwrap().join().unwrap_err();
        match err {
            CoreError::StagePanicked { stage, message } => {
                assert_eq!(stage, "bad");
                assert!(message.contains("exploded"));
            }
            CoreError::SourceClosed { .. } => {
                // Acceptable: the child error may be collected first.
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn pause_and_resume_round_trip() {
        let mut pb = PipelineBuilder::new();
        let f = pb.source(
            "f",
            (),
            slow_counter(10_000, Duration::from_micros(100)),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        std::thread::sleep(Duration::from_millis(20));
        auto.pause();
        std::thread::sleep(Duration::from_millis(10)); // let stages reach the checkpoint
        let frozen = f.latest().map(|s| s.version());
        std::thread::sleep(Duration::from_millis(30));
        let still = f.latest().map(|s| s.version());
        assert_eq!(frozen, still, "output advanced while paused");
        auto.resume();
        std::thread::sleep(Duration::from_millis(30));
        let after = f.latest().map(|s| s.version());
        assert!(after > still, "output did not advance after resume");
        auto.stop_and_join().unwrap();
    }

    #[test]
    fn energy_budget_bounds_runtime() {
        let mut pb = PipelineBuilder::new();
        let f = pb.source(
            "f",
            (),
            slow_counter(1_000_000, Duration::from_micros(100)),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        // 100 W machine, 3 J budget -> ~30 ms.
        let started = Instant::now();
        let report = auto.run_for_energy(3.0, 100.0).unwrap();
        assert!(started.elapsed() < Duration::from_secs(5));
        assert!(!report.all_final());
        assert!(f.latest().is_some());
    }

    #[test]
    fn bad_energy_budget_is_rejected() {
        let mut pb = PipelineBuilder::new();
        let _ = pb.source(
            "f",
            (),
            slow_counter(1, Duration::ZERO),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        assert!(matches!(
            auto.run_for_energy(1.0, 0.0),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn stop_and_join_is_not_an_error() {
        let mut pb = PipelineBuilder::new();
        let _f = pb.source(
            "f",
            (),
            slow_counter(1_000_000, Duration::from_micros(50)),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let report = auto.stop_and_join().unwrap();
        assert!(!report.all_final());
        assert_eq!(report.stages[0].end, StageEnd::Stopped);
    }

    #[test]
    fn debug_impl_nonempty() {
        let mut pb = PipelineBuilder::new();
        let _f = pb.source(
            "f",
            (),
            slow_counter(1, Duration::ZERO),
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        assert!(!format!("{auto:?}").is_empty());
        auto.join().unwrap();
    }
}
