//! The types you need for day-to-day use, in one import.
//!
//! ```
//! use anytime_core::prelude::*;
//! ```
//!
//! This is the intended import path: building a pipeline, running it,
//! reading snapshots, supervising failures, serving requests, and
//! observing what happened. Less common machinery stays under its module
//! path (`buffer`, `metrics`, `monitor`, `scheduler`, `contract`,
//! `sync_pipeline`, …).

pub use crate::buffer::BufferReader;
pub use crate::control::ControlToken;
pub use crate::diffusive::Diffusive;
pub use crate::error::{CoreError, Result};
pub use crate::executor::{Automaton, RunReport};
pub use crate::governor::{BrownoutPolicy, BrownoutState, GovernorPolicy};
pub use crate::iterative::Iterative;
pub use crate::map::SampledMap;
pub use crate::observe::{MetricSet, MetricStats, Observe};
pub use crate::pipeline::{Pipeline, PipelineBuilder};
pub use crate::precise::Precise;
pub use crate::reduce::SampledReduce;
pub use crate::rta::RtaPolicy;
pub use crate::runtime::{Runtime, RuntimeHandle, RuntimeStats};
pub use crate::serve::{ServeOptions, ServePool, ServeResponse, ServeStatus};
pub use crate::stage::{AnytimeBody, StageEnd, StageOptions, StepOutcome};
pub use crate::supervisor::{FailurePolicy, StallAction, Supervision};
pub use crate::trace::{Recorder, TraceLog};
pub use crate::version::Snapshot;
