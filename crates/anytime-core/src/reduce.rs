use crate::stage::{AnytimeBody, StepOutcome};
use anytime_permute::{DynPermutation, Permutation};

/// An input-sampled reduction: the paper's anytime recipe for commutative
/// reductions (§III-B2, Figure 3).
///
/// A reduction folds input elements into an accumulator with a commutative
/// operator, so the elements can be processed in *any* bijective order and
/// every prefix of that order is a valid sample of the input set. The body:
///
/// - visits input elements in the order of a [`DynPermutation`] (use a
///   pseudo-random permutation for unordered data to avoid memory-order
///   bias);
/// - folds each visited element into the working accumulator;
/// - optionally *normalizes* published values: for non-idempotent operators
///   (like `+`) the accumulator over a sample of size `i` underestimates the
///   population value, so the paper publishes the weighted
///   `O'_i = O_i × n / i` instead. Idempotent operators (`min`, `max`,
///   bitwise or, set union) need no normalization.
///
/// The permutation length must equal the number of input items; this is
/// checked when the body starts.
///
/// # Examples
///
/// An anytime sum with weighting:
///
/// ```
/// use anytime_core::{SampledReduce, AnytimeBody, StepOutcome};
/// use anytime_permute::{Lfsr, DynPermutation};
///
/// let input: Vec<f64> = (0..100).map(f64::from).collect();
/// let mut body = SampledReduce::new(
///     DynPermutation::new(Lfsr::with_len(100).unwrap()),
///     |_| 0.0f64,
///     |acc, input: &Vec<f64>, idx| *acc += input[idx],
/// )
/// .with_chunk(5)
/// .with_weighting();
///
/// let mut acc = body.init(&input);
/// for step in 0..10 {
///     body.step(&input, &mut acc, step);
/// }
/// // 10 steps × 5 elements per chunk = a half sample of 50 elements. The
/// // weighting hook receives the *element* count (50), not the step count
/// // (10), so the render extrapolates to approximate the full sum (4950).
/// let approx = body.render(&acc, &input, 10);
/// assert!((approx - 4950.0).abs() / 4950.0 < 0.3);
/// ```
pub struct SampledReduce<I, A> {
    perm: DynPermutation,
    /// Materialized sample order, stored narrow to halve the streaming
    /// footprint of the hot loop (indices always fit u32 for practical
    /// data sets).
    order: Vec<u32>,
    chunk: usize,
    init: InitFn<I, A>,
    fold: FoldFn<I, A>,
    render: Option<RenderFn<I, A>>,
}

/// Boxed identity-accumulator constructor.
type InitFn<I, A> = Box<dyn FnMut(&I) -> A + Send>;
/// Boxed commutative fold: `(acc, input, data_index)`.
type FoldFn<I, A> = Box<dyn FnMut(&mut A, &I, usize) + Send>;
/// Boxed publication renderer: `(acc, input, elements_done, total_elements)`.
/// Both counts are in input *elements* (sample sizes), never runner steps —
/// [`AnytimeBody::render`] converts before invoking the hook.
type RenderFn<I, A> = Box<dyn Fn(&A, &I, u64, u64) -> A + Send>;

impl<I, A> SampledReduce<I, A> {
    /// Creates an input-sampled reduction.
    ///
    /// `init` builds the identity accumulator; `fold(acc, input, idx)`
    /// combines input element `idx` into the accumulator. The fold operator
    /// must be commutative for sampling to be unbiased and for the final
    /// output to be precise regardless of order.
    pub fn new(
        perm: impl Into<DynPermutation>,
        init: impl FnMut(&I) -> A + Send + 'static,
        fold: impl FnMut(&mut A, &I, usize) + Send + 'static,
    ) -> Self {
        Self {
            perm: perm.into(),
            order: Vec::new(),
            chunk: 1,
            init: Box::new(init),
            fold: Box::new(fold),
            render: None,
        }
    }

    /// Folds `chunk` elements per anytime step, amortizing per-step runtime
    /// costs over many cheap folds (see [`crate::SampledMap::with_chunk`]).
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk must be non-zero");
        self.chunk = chunk;
        self
    }

    /// Publishes custom renders: `render(acc, input, elements_done,
    /// total_elements)`.
    ///
    /// The hook is invoked at publication time with the number of input
    /// *elements* folded so far and the population size — not runner
    /// steps. With [`SampledReduce::with_chunk`] each step folds several
    /// elements, and weighting-style extrapolation must divide by the
    /// sample size, so the conversion (`elements = steps × chunk`, capped
    /// at the population) happens before the hook runs.
    pub fn with_render(mut self, render: impl Fn(&A, &I, u64, u64) -> A + Send + 'static) -> Self {
        self.render = Some(Box::new(render));
        self
    }

    /// The number of items the permutation covers.
    pub fn items(&self) -> usize {
        self.perm.len()
    }
}

impl<I, A> SampledReduce<I, A>
where
    A: Scalable,
{
    /// Enables the paper's `O'_i = O_i × n / i` weighting for non-idempotent
    /// operators, extrapolating partial accumulations to the population
    /// size.
    pub fn with_weighting(self) -> Self {
        self.with_render(|acc, _input, done, total| {
            if done == 0 {
                acc.scale(0.0)
            } else {
                acc.scale(total as f64 / done as f64)
            }
        })
    }
}

/// Values that can be extrapolated by a scalar factor, used by
/// [`SampledReduce::with_weighting`].
pub trait Scalable {
    /// Returns this value scaled by `factor`.
    fn scale(&self, factor: f64) -> Self;
}

impl Scalable for f64 {
    fn scale(&self, factor: f64) -> Self {
        self * factor
    }
}

impl Scalable for f32 {
    fn scale(&self, factor: f64) -> Self {
        (f64::from(*self) * factor) as f32
    }
}

impl Scalable for u64 {
    fn scale(&self, factor: f64) -> Self {
        (*self as f64 * factor).round() as u64
    }
}

impl Scalable for i64 {
    fn scale(&self, factor: f64) -> Self {
        (*self as f64 * factor).round() as i64
    }
}

impl<T: Scalable> Scalable for Vec<T> {
    fn scale(&self, factor: f64) -> Self {
        self.iter().map(|x| x.scale(factor)).collect()
    }
}

impl<I, A> AnytimeBody for SampledReduce<I, A>
where
    I: Send + Sync + 'static,
    A: Clone + Send + Sync + 'static,
{
    type Input = I;
    type Output = A;

    fn init(&mut self, input: &I) -> A {
        if self.order.is_empty() {
            self.order = self
                .perm
                .materialize()
                .into_iter()
                .map(|idx| u32::try_from(idx).expect("index fits u32"))
                .collect();
        }
        (self.init)(input)
    }

    fn step(&mut self, input: &I, out: &mut A, step: u64) -> StepOutcome {
        let start = step as usize * self.chunk;
        let end = (start + self.chunk).min(self.order.len());
        for &idx in &self.order[start..end] {
            (self.fold)(out, input, idx as usize);
        }
        if end == self.order.len() {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        }
    }

    fn total_steps(&self, _input: &I) -> Option<u64> {
        Some((self.perm.len() as u64).div_ceil(self.chunk as u64))
    }

    fn progress(&self, steps_done: u64, _input: &I) -> u64 {
        (steps_done * self.chunk as u64).min(self.perm.len() as u64)
    }

    fn render(&self, out: &A, input: &I, steps_done: u64) -> A {
        match &self.render {
            // The render hook works in *elements* (sample sizes), not
            // runner steps, so weighting stays correct under chunking.
            Some(f) => {
                let total = self.perm.len() as u64;
                let done = (steps_done * self.chunk as u64).min(total);
                f(out, input, done, total)
            }
            None => out.clone(),
        }
    }
}

impl<I, A> std::fmt::Debug for SampledReduce<I, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SampledReduce")
            .field("items", &self.perm.len())
            .field("weighted", &self.render.is_some())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anytime_permute::{Lfsr, Sequential};

    fn drive_to_completion<B: AnytimeBody>(body: &mut B, input: &B::Input) -> (B::Output, u64) {
        let mut out = body.init(input);
        let mut step = 0;
        while body.step(input, &mut out, step) == StepOutcome::Continue {
            step += 1;
        }
        (out, step + 1)
    }

    #[test]
    fn full_reduction_is_precise_in_any_order() {
        let input: Vec<u64> = (1..=100).collect();
        for perm in [
            DynPermutation::new(Sequential::new(100)),
            DynPermutation::new(Lfsr::with_len(100).unwrap()),
        ] {
            let mut body =
                SampledReduce::new(perm, |_| 0u64, |acc, i: &Vec<u64>, idx| *acc += i[idx]);
            let (out, steps) = drive_to_completion(&mut body, &input);
            assert_eq!(out, 5050);
            assert_eq!(steps, 100);
        }
    }

    #[test]
    fn histogram_construction_like_figure_3() {
        // Build a histogram by pseudo-random input sampling; the full pass
        // must be exact, and a half pass must already resemble it.
        let input: Vec<u8> = (0..1000).map(|i| (i % 4) as u8).collect();
        let mut body = SampledReduce::new(
            DynPermutation::new(Lfsr::with_len(1000).unwrap()),
            |_| vec![0u64; 4],
            |acc: &mut Vec<u64>, input: &Vec<u8>, idx| acc[input[idx] as usize] += 1,
        );
        let mut acc = body.init(&input);
        for step in 0..500 {
            body.step(&input, &mut acc, step);
        }
        // Uniform input: each bucket should hold roughly 125 of 500 samples.
        for &count in &acc {
            assert!((75..=175).contains(&count), "biased sample: {acc:?}");
        }
        for step in 500..1000 {
            body.step(&input, &mut acc, step);
        }
        assert_eq!(acc, vec![250, 250, 250, 250]);
    }

    #[test]
    fn weighting_extrapolates_sums() {
        let input: Vec<f64> = vec![2.0; 64];
        let mut body = SampledReduce::new(
            DynPermutation::new(Sequential::new(64)),
            |_| 0.0f64,
            |acc, i: &Vec<f64>, idx| *acc += i[idx],
        )
        .with_weighting();
        let mut acc = body.init(&input);
        for step in 0..16 {
            body.step(&input, &mut acc, step);
        }
        // Sample sum is 32; weighted render extrapolates to 128.
        assert_eq!(body.render(&acc, &input, 16), 128.0);
        // Zero-sample render does not divide by zero.
        assert_eq!(body.render(&acc, &input, 0), 0.0);
    }

    #[test]
    fn render_hook_receives_elements_not_steps() {
        // Regression for the render arity/doc mismatch: with chunking, the
        // hook's `done`/`total` arguments are element counts, so weighting
        // divides by the sample size rather than the step count.
        let input: Vec<f64> = vec![1.0; 64];
        let mut body = SampledReduce::new(
            DynPermutation::new(Sequential::new(64)),
            |_| 0.0f64,
            |acc, i: &Vec<f64>, idx| *acc += i[idx],
        )
        .with_chunk(8)
        .with_weighting();
        let mut acc = body.init(&input);
        for step in 0..4 {
            body.step(&input, &mut acc, step);
        }
        // 4 steps x 8 elements = 32 elements, sum 32; extrapolated to 64.
        // (Had the hook seen steps, it would wrongly render 32 * 64/4.)
        assert_eq!(body.render(&acc, &input, 4), 64.0);
        // A past-the-end step count is capped at the population size.
        assert_eq!(body.render(&acc, &input, 1000), 32.0);

        // The hook observes exactly the documented arguments.
        let probe = SampledReduce::new(
            DynPermutation::new(Sequential::new(10)),
            |_| 0.0f64,
            |_, _: &Vec<f64>, _| {},
        )
        .with_chunk(3)
        .with_render(|_, _, done, total| (done * 100 + total) as f64);
        let probe_input: Vec<f64> = vec![0.0; 10];
        // 2 steps x 3 elements = 6 elements of 10.
        assert_eq!(probe.render(&0.0, &probe_input, 2), 610.0);
    }

    #[test]
    fn idempotent_reduction_needs_no_weighting() {
        let input: Vec<u64> = vec![3, 9, 1, 7];
        let mut body = SampledReduce::new(
            DynPermutation::new(Lfsr::with_len(4).unwrap()),
            |_| 0u64,
            |acc, i: &Vec<u64>, idx| *acc = (*acc).max(i[idx]),
        );
        let (out, _) = drive_to_completion(&mut body, &input);
        assert_eq!(out, 9);
    }

    #[test]
    fn scalable_impls() {
        assert_eq!(2.0f64.scale(1.5), 3.0);
        assert_eq!(2.0f32.scale(0.5), 1.0);
        assert_eq!(10u64.scale(0.25), 3); // rounds
        assert_eq!((-4i64).scale(0.5), -2);
        assert_eq!(vec![1.0f64, 2.0].scale(2.0), vec![2.0, 4.0]);
    }

    #[test]
    fn total_steps_is_item_count() {
        let body: SampledReduce<Vec<u64>, u64> = SampledReduce::new(
            DynPermutation::new(Sequential::new(42)),
            |_| 0,
            |_, _, _| {},
        );
        assert_eq!(body.total_steps(&vec![]), Some(42));
        assert_eq!(body.items(), 42);
    }
}
