//! Contract-mode execution: deadline-driven level selection (paper §II-B).
//!
//! Anytime algorithms come in two flavours. The automaton is built around
//! *interruptible* execution, but the paper also discusses **contract**
//! algorithms, which are told their time budget up front and schedule their
//! computations to fit it (citing design-to-time scheduling and imprecise
//! computation). This module provides the contract counterpart for
//! iterative stages: given per-level cost estimates and a deadline, pick
//! the levels to run.
//!
//! The planner exploits a freedom interruptible execution does not have:
//! with a known budget there is no need to produce intermediate outputs,
//! so a contract plan may *skip* cheap early levels entirely and spend the
//! whole budget on the most accurate level that fits — plus, optionally,
//! warm-up levels that still leave the final one affordable (insurance
//! against the run being cut short after all).

use crate::error::CoreError;
use std::time::Duration;

/// Cost/quality estimate for one accuracy level of an iterative stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelEstimate {
    /// Accuracy level index (0-based, as in [`crate::Iterative`]).
    pub level: u64,
    /// Estimated cost of executing this level (a full re-execution).
    pub cost: Duration,
    /// Estimated output quality after this level (any monotone scale;
    /// higher is better).
    pub quality: f64,
}

/// A contract plan: the levels to execute, in order.
#[derive(Debug, Clone, PartialEq)]
pub struct ContractPlan {
    /// Levels to run, ascending.
    pub levels: Vec<u64>,
    /// Total estimated cost of the plan.
    pub expected_cost: Duration,
    /// Estimated quality of the final executed level.
    pub expected_quality: f64,
}

/// Plans a contract execution of an iterative stage: run exactly one level
/// — the highest-quality one whose estimated cost fits `deadline` — or the
/// cheapest level if nothing fits (the paper's "suboptimal output quality
/// can be more acceptable than exceeding time limits" is still better than
/// no output).
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] if `estimates` is empty or
/// qualities are not monotone non-decreasing in level (an anytime stage
/// must improve with level).
pub fn plan_single_level(
    estimates: &[LevelEstimate],
    deadline: Duration,
) -> crate::Result<ContractPlan> {
    validate(estimates)?;
    let best_fit = estimates
        .iter()
        .filter(|e| e.cost <= deadline)
        .max_by(|a, b| a.quality.total_cmp(&b.quality));
    let chosen = match best_fit {
        Some(e) => e,
        None => estimates
            .iter()
            .min_by_key(|e| e.cost)
            .expect("validated non-empty"),
    };
    Ok(ContractPlan {
        levels: vec![chosen.level],
        expected_cost: chosen.cost,
        expected_quality: chosen.quality,
    })
}

/// Plans a contract execution like [`plan_single_level`], but refuses the
/// deadline instead of falling back to the cheapest level when nothing
/// fits.
///
/// This is the admission-control flavour: a serving layer that already
/// knows a request's remaining budget wants "can any level make this
/// deadline?" answered honestly so it can reject fast, not a plan that is
/// guaranteed to miss.
///
/// # Errors
///
/// Returns [`CoreError::AdmissionRejected`] — carrying the cheapest
/// level's cost as the projection — when no level fits `deadline`, and
/// [`CoreError::InvalidConfig`] for the same malformed inputs
/// [`plan_single_level`] rejects.
pub fn plan_strict(estimates: &[LevelEstimate], deadline: Duration) -> crate::Result<ContractPlan> {
    validate(estimates)?;
    if !estimates.iter().any(|e| e.cost <= deadline) {
        let cheapest = estimates
            .iter()
            .map(|e| e.cost)
            .min()
            .expect("validated non-empty");
        return Err(CoreError::AdmissionRejected {
            projected: cheapest,
            budget: deadline,
        });
    }
    plan_single_level(estimates, deadline)
}

/// Plans a contract execution like [`plan_strict`], but against a deadline
/// already discounted by a queue-delay bound: the level must fit in
/// `deadline − queue_delay`, and a rejection reports the *end-to-end*
/// projection (`queue_delay` plus the cheapest level) against the full
/// deadline — the number a caller can compare to other requests' budgets.
///
/// This is the bound-aware admission flavour the serving layer uses: the
/// response-time analysis supplies `queue_delay` (its worst-case wait
/// bound, see [`crate::rta`]), and the plan is then honest about what the
/// request can still afford *after* queuing, not just in isolation.
///
/// # Errors
///
/// As [`plan_strict`], with the rejection's `projected` remapped to
/// `queue_delay + cheapest` and `budget` to the undiscounted `deadline`.
pub fn plan_strict_with_delay(
    estimates: &[LevelEstimate],
    deadline: Duration,
    queue_delay: Duration,
) -> crate::Result<ContractPlan> {
    plan_strict(estimates, deadline.saturating_sub(queue_delay)).map_err(|e| match e {
        CoreError::AdmissionRejected { projected, .. } => CoreError::AdmissionRejected {
            projected: queue_delay + projected,
            budget: deadline,
        },
        other => other,
    })
}

/// Plans a contract execution with interruption insurance: picks the best
/// final level that fits, then prepends the cheapest earlier levels that
/// still leave the final level affordable. If the run is cut short after
/// all, some valid output exists.
///
/// # Errors
///
/// As [`plan_single_level`].
pub fn plan_with_insurance(
    estimates: &[LevelEstimate],
    deadline: Duration,
) -> crate::Result<ContractPlan> {
    let final_plan = plan_single_level(estimates, deadline)?;
    let final_level = final_plan.levels[0];
    let mut budget = deadline.saturating_sub(final_plan.expected_cost);
    let mut warmups: Vec<&LevelEstimate> = Vec::new();
    // Greedily take the cheapest earlier levels that fit the slack.
    let mut earlier: Vec<&LevelEstimate> =
        estimates.iter().filter(|e| e.level < final_level).collect();
    earlier.sort_by_key(|e| e.cost);
    for e in earlier {
        if e.cost <= budget {
            budget -= e.cost;
            warmups.push(e);
        }
    }
    warmups.sort_by_key(|e| e.level);
    let mut levels: Vec<u64> = warmups.iter().map(|e| e.level).collect();
    levels.push(final_level);
    let expected_cost = final_plan.expected_cost + warmups.iter().map(|e| e.cost).sum::<Duration>();
    Ok(ContractPlan {
        levels,
        expected_cost,
        expected_quality: final_plan.expected_quality,
    })
}

/// Measures per-level cost estimates by executing each level of a
/// computation once on a calibration input.
///
/// `run_level(level)` executes one level end to end. The paper's contract
/// scheduling literature assumes such profiles are available; this is the
/// offline profiling step.
pub fn calibrate(
    levels: u64,
    quality: impl Fn(u64) -> f64,
    mut run_level: impl FnMut(u64),
) -> Vec<LevelEstimate> {
    (0..levels)
        .map(|level| {
            let start = std::time::Instant::now();
            run_level(level);
            LevelEstimate {
                level,
                cost: start.elapsed(),
                quality: quality(level),
            }
        })
        .collect()
}

fn validate(estimates: &[LevelEstimate]) -> crate::Result<()> {
    if estimates.is_empty() {
        return Err(CoreError::InvalidConfig(
            "contract planning needs at least one level estimate".into(),
        ));
    }
    if let Some(e) = estimates.iter().find(|e| e.cost.is_zero()) {
        return Err(CoreError::InvalidConfig(format!(
            "level {} has a zero cost estimate; a plannable level must take \
             nonzero time",
            e.level
        )));
    }
    if let Some(e) = estimates.iter().find(|e| e.quality.is_nan()) {
        return Err(CoreError::InvalidConfig(format!(
            "level {} has a NaN quality estimate",
            e.level
        )));
    }
    let mut sorted = estimates.to_vec();
    sorted.sort_by_key(|e| e.level);
    if sorted.windows(2).any(|w| w[1].quality < w[0].quality) {
        return Err(CoreError::InvalidConfig(
            "level qualities must be monotone non-decreasing".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimates() -> Vec<LevelEstimate> {
        vec![
            LevelEstimate {
                level: 0,
                cost: Duration::from_millis(10),
                quality: 5.0,
            },
            LevelEstimate {
                level: 1,
                cost: Duration::from_millis(25),
                quality: 12.0,
            },
            LevelEstimate {
                level: 2,
                cost: Duration::from_millis(60),
                quality: 20.0,
            },
            LevelEstimate {
                level: 3,
                cost: Duration::from_millis(140),
                quality: f64::INFINITY,
            },
        ]
    }

    #[test]
    fn picks_best_level_that_fits() {
        let plan = plan_single_level(&estimates(), Duration::from_millis(70)).unwrap();
        assert_eq!(plan.levels, vec![2]);
        assert_eq!(plan.expected_quality, 20.0);
        // A generous budget selects the precise level.
        let plan = plan_single_level(&estimates(), Duration::from_secs(1)).unwrap();
        assert_eq!(plan.levels, vec![3]);
        assert_eq!(plan.expected_quality, f64::INFINITY);
    }

    #[test]
    fn impossible_deadline_falls_back_to_cheapest() {
        let plan = plan_single_level(&estimates(), Duration::from_millis(1)).unwrap();
        assert_eq!(plan.levels, vec![0]);
    }

    #[test]
    fn insurance_prepends_affordable_warmups() {
        // Deadline 100ms: final level 2 (60ms) leaves 40ms slack — enough
        // for levels 0 (10) and 1 (25).
        let plan = plan_with_insurance(&estimates(), Duration::from_millis(100)).unwrap();
        assert_eq!(plan.levels, vec![0, 1, 2]);
        assert_eq!(plan.expected_cost, Duration::from_millis(95));
        // Tight deadline (62 ms): 2 ms of slack fits no warmup level.
        let plan = plan_with_insurance(&estimates(), Duration::from_millis(62)).unwrap();
        assert_eq!(plan.levels, vec![2]);
    }

    #[test]
    fn insurance_respects_deadline() {
        for ms in [5u64, 30, 70, 100, 200, 500] {
            let deadline = Duration::from_millis(ms);
            let plan = plan_with_insurance(&estimates(), deadline).unwrap();
            // Unless even the cheapest level exceeded the deadline, the
            // total plan must fit.
            if estimates().iter().any(|e| e.cost <= deadline) {
                assert!(
                    plan.expected_cost <= deadline,
                    "{ms}ms: plan {plan:?} exceeds deadline"
                );
            }
            // Plans always end with their highest level.
            assert_eq!(
                *plan.levels.last().unwrap(),
                plan.levels.iter().copied().max().unwrap()
            );
        }
    }

    #[test]
    fn rejects_bad_estimates() {
        assert!(plan_single_level(&[], Duration::from_millis(1)).is_err());
        let non_monotone = vec![
            LevelEstimate {
                level: 0,
                cost: Duration::from_millis(1),
                quality: 10.0,
            },
            LevelEstimate {
                level: 1,
                cost: Duration::from_millis(2),
                quality: 5.0,
            },
        ];
        assert!(plan_single_level(&non_monotone, Duration::from_millis(9)).is_err());
    }

    #[test]
    fn strict_plan_matches_single_level_when_something_fits() {
        let plan = plan_strict(&estimates(), Duration::from_millis(70)).unwrap();
        assert_eq!(
            plan,
            plan_single_level(&estimates(), Duration::from_millis(70)).unwrap()
        );
    }

    #[test]
    fn strict_plan_rejects_impossible_deadline() {
        match plan_strict(&estimates(), Duration::from_millis(1)) {
            Err(CoreError::AdmissionRejected { projected, budget }) => {
                assert_eq!(projected, Duration::from_millis(10));
                assert_eq!(budget, Duration::from_millis(1));
            }
            other => panic!("expected AdmissionRejected, got {other:?}"),
        }
    }

    #[test]
    fn delayed_plan_discounts_the_budget_and_reports_end_to_end() {
        // 70ms total with 10ms of queue delay leaves 60ms: level 2 fits
        // exactly, same as an undelayed 60ms plan.
        let plan = plan_strict_with_delay(
            &estimates(),
            Duration::from_millis(70),
            Duration::from_millis(10),
        )
        .unwrap();
        assert_eq!(plan.levels, vec![2]);
        // Zero delay degenerates to plan_strict.
        assert_eq!(
            plan_strict_with_delay(&estimates(), Duration::from_millis(70), Duration::ZERO)
                .unwrap(),
            plan_strict(&estimates(), Duration::from_millis(70)).unwrap()
        );
        // When nothing fits the discounted budget, the rejection projects
        // queue delay + cheapest level against the full deadline.
        match plan_strict_with_delay(
            &estimates(),
            Duration::from_millis(12),
            Duration::from_millis(5),
        ) {
            Err(CoreError::AdmissionRejected { projected, budget }) => {
                assert_eq!(projected, Duration::from_millis(15));
                assert_eq!(budget, Duration::from_millis(12));
            }
            other => panic!("expected AdmissionRejected, got {other:?}"),
        }
    }

    #[test]
    fn rejects_zero_cost_and_nan_quality() {
        let zero_cost = vec![LevelEstimate {
            level: 0,
            cost: Duration::ZERO,
            quality: 1.0,
        }];
        assert!(matches!(
            plan_single_level(&zero_cost, Duration::from_millis(5)),
            Err(CoreError::InvalidConfig(_))
        ));
        let nan_quality = vec![LevelEstimate {
            level: 0,
            cost: Duration::from_millis(1),
            quality: f64::NAN,
        }];
        assert!(matches!(
            plan_strict(&nan_quality, Duration::from_millis(5)),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn calibrate_measures_each_level() {
        let mut runs = Vec::new();
        let est = calibrate(
            3,
            |l| l as f64,
            |l| {
                runs.push(l);
                std::thread::sleep(Duration::from_millis(2));
            },
        );
        assert_eq!(runs, vec![0, 1, 2]);
        assert_eq!(est.len(), 3);
        assert!(est.iter().all(|e| e.cost >= Duration::from_millis(1)));
        assert_eq!(est[2].quality, 2.0);
    }
}
