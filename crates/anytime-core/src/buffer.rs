//! Versioned, atomically published stage output buffers.
//!
//! Every anytime stage owns exactly one output buffer (paper Property 2,
//! enforced by the non-cloneable [`BufferWriter`]). The producer publishes
//! whole output versions `O_1, …, O_n` with increasing accuracy; each
//! publication atomically replaces the previous version (Property 3), so any
//! number of [`BufferReader`]s — dependent stages, accuracy monitors, the
//! end user — always observe a complete, valid approximation.
//!
//! Waits are **event-driven**: a blocked reader registers a wait set with
//! the buffer (and, for control-aware waits, with the [`ControlToken`]),
//! and is woken the instant a version is published, the producer exits, or
//! the automaton stops — there is no polling quantum, so timeout deadlines
//! are met exactly and interrupt latency is bounded by thread wakeup time.
//! Per-buffer [`WaitStats`] counters record waits, wakeups, blocked time,
//! and publication-to-observation latency.
//!
//! Publication is **zero-copy**: a snapshot holds its payload behind an
//! `Arc`, so replacing `latest`, appending to history, and handing
//! snapshots to readers all move pointers, never payload bytes. Producers
//! that rebuild their output every publication can go further with
//! [`publish_arc`](BufferWriter::publish_arc) and [`DoubleBuffer`], which
//! recycles the allocation of the two-publications-old version once no
//! reader pins it.

use crate::check::PublishInvariants;
use crate::control::ControlToken;
use crate::error::{CoreError, Result};
use crate::metrics::{WaitCounters, WaitStats};
use crate::notify::{lock_unpoisoned, WaitSet, Watchers};
use crate::trace::{EventKind, Recorder, StageId, TraceEvent};
use crate::version::{Snapshot, SnapshotMeta, Version};
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    latest: Option<Snapshot<T>>,
    closed: bool,
    /// Version assigned to the next publication. Lives in the shared state
    /// (not the writer) so the supervisor can seal a degraded terminal
    /// version from outside the producer thread.
    next: Version,
    /// Set once the buffer was sealed degraded: the latest snapshot is
    /// terminal, and further publications are dropped (counted below).
    degraded_sealed: bool,
    /// Publications dropped after a degraded seal (a stalled-but-alive
    /// producer writing into a sealed buffer).
    dropped: u64,
    /// Debug-build publication checker (Properties 2 and 3); see
    /// [`crate::check`].
    invariants: PublishInvariants,
}

struct Shared<T> {
    name: String,
    state: Mutex<State<T>>,
    /// Retained snapshots (oldest first) when history is enabled, `None`
    /// otherwise. Kept outside `state` so [`BufferReader::history`]'s O(n)
    /// clone never blocks the publish / latest / wait paths. Lock order:
    /// `state` before `history`; publishers hold both only for the O(1)
    /// push, and `history()` takes only this lock.
    history: Mutex<Option<Vec<Snapshot<T>>>>,
    watchers: Watchers,
    counters: WaitCounters,
    /// Trace recorder (disabled by default); `stage` is this buffer's
    /// interned name in the recorder's stage table.
    recorder: Recorder,
    stage: StageId,
}

/// Type-erased supervisory handle to a buffer, used by the watchdog and
/// the stage supervision loop: progress probing, degraded sealing, and
/// wakeup subscription without knowing the value type.
pub(crate) trait BufferControl: Send + Sync {
    /// Version of the most recent publication, if any.
    fn latest_version(&self) -> Option<Version>;
    /// `true` once the producer exited.
    fn is_closed(&self) -> bool;
    /// `true` once a terminal (final or degraded) version stands.
    fn is_terminal(&self) -> bool;
    /// `true` once the buffer was sealed degraded.
    fn is_degraded(&self) -> bool;
    /// Seals the buffer degraded (see [`BufferWriter::seal_degraded`]).
    fn seal_degraded(&self) -> bool;
    /// Publications dropped after a degraded seal.
    fn dropped_publishes(&self) -> u64;
    /// The buffer's diagnostic name.
    fn buffer_name(&self) -> &str;
    /// Blocking-wait counters for this buffer.
    fn wait_stats(&self) -> WaitStats;
    /// Registers `ws` for wakeups on every publication or close.
    fn subscribe_watch(&self, ws: &WaitSet) -> crate::notify::WatchGuard<'_>;
}

impl<T: Send + Sync> BufferControl for Shared<T> {
    fn latest_version(&self) -> Option<Version> {
        lock_unpoisoned(&self.state)
            .latest
            .as_ref()
            .map(Snapshot::version)
    }

    fn is_closed(&self) -> bool {
        lock_unpoisoned(&self.state).closed
    }

    fn is_terminal(&self) -> bool {
        lock_unpoisoned(&self.state)
            .latest
            .as_ref()
            .is_some_and(Snapshot::is_terminal)
    }

    fn is_degraded(&self) -> bool {
        lock_unpoisoned(&self.state).degraded_sealed
    }

    fn seal_degraded(&self) -> bool {
        self.do_seal_degraded()
    }

    fn dropped_publishes(&self) -> u64 {
        lock_unpoisoned(&self.state).dropped
    }

    fn buffer_name(&self) -> &str {
        &self.name
    }

    fn wait_stats(&self) -> WaitStats {
        self.counters.snapshot()
    }

    fn subscribe_watch(&self, ws: &WaitSet) -> crate::notify::WatchGuard<'_> {
        self.watchers.subscribe(ws)
    }
}

impl<T> Shared<T> {
    /// Re-publishes the latest version flagged degraded, making the buffer
    /// terminal. `false` if nothing was ever published. Idempotent once a
    /// terminal version stands.
    fn do_seal_degraded(&self) -> bool {
        let mut st = lock_unpoisoned(&self.state);
        if st.latest.as_ref().is_some_and(Snapshot::is_terminal) {
            // Already terminal (precise final or a previous seal).
            return true;
        }
        let Some(prev) = st.latest.as_ref() else {
            // Nothing was ever published: there is no approximate output
            // to degrade to.
            return false;
        };
        let snap = Snapshot {
            value: Arc::clone(&prev.value),
            meta: SnapshotMeta {
                version: st.next,
                steps: prev.meta.steps,
                is_final: false,
                degraded: true,
            },
            published_at: Instant::now(),
        };
        st.next = st.next.next();
        st.invariants
            .check_publish(&self.name, snap.meta.version.get(), snap.meta.steps, true);
        st.degraded_sealed = true;
        let mut hist = lock_unpoisoned(&self.history);
        if let Some(hist) = hist.as_mut() {
            hist.push(snap.clone());
        }
        drop(hist);
        let version = snap.version();
        let steps = snap.steps();
        st.latest = Some(snap);
        drop(st);
        self.watchers.wake_all();
        self.recorder.emit_with(|at| {
            let mut ev = TraceEvent::new(at, EventKind::Degrade);
            ev.stage = Some(self.stage);
            ev.version = Some(version.get());
            ev.steps = Some(steps);
            ev.degraded = true;
            ev
        });
        true
    }
}

/// Options for creating a versioned output buffer.
#[derive(Debug, Clone, Copy, Default)]
pub struct BufferOptions {
    /// Retain every published snapshot (not just the latest).
    ///
    /// Snapshots share their values via `Arc`, so history costs one `Arc`
    /// plus metadata per version. Used by accuracy profiling to reconstruct
    /// the full version trace after a run.
    pub keep_history: bool,
}

/// Creates a versioned single-producer, multi-consumer output buffer.
///
/// This is the paper's per-stage output buffer: the writer publishes
/// intermediate outputs `O_1, …, O_n` with increasing accuracy, each
/// atomically replacing the previous (**Property 3**), and readers always
/// observe some complete version. Exactly one [`BufferWriter`] exists per
/// buffer, enforcing the paper's **Property 2** (no other stage may modify
/// a stage's output buffer) in the type system.
///
/// # Examples
///
/// ```
/// use anytime_core::buffer;
///
/// let (mut w, r) = buffer::versioned::<Vec<u8>>("F");
/// w.publish(vec![1], 1);
/// w.publish_final(vec![1, 2], 2);
/// let snap = r.latest().unwrap();
/// assert!(snap.is_final());
/// assert_eq!(snap.value(), &vec![1, 2]);
/// ```
pub fn versioned<T>(name: impl Into<String>) -> (BufferWriter<T>, BufferReader<T>) {
    versioned_with(name, BufferOptions::default())
}

/// Creates a versioned buffer with explicit [`BufferOptions`].
pub fn versioned_with<T>(
    name: impl Into<String>,
    options: BufferOptions,
) -> (BufferWriter<T>, BufferReader<T>) {
    versioned_traced(name, options, &Recorder::disabled())
}

/// Creates a versioned buffer whose publications and blocking-wait
/// observations are recorded as trace events on `recorder` (a disabled
/// recorder costs one branch per publication).
pub fn versioned_traced<T>(
    name: impl Into<String>,
    options: BufferOptions,
    recorder: &Recorder,
) -> (BufferWriter<T>, BufferReader<T>) {
    let name = name.into();
    let stage = recorder.stage(&name);
    let shared = Arc::new(Shared {
        name,
        state: Mutex::new(State {
            latest: None,
            closed: false,
            next: Version::FIRST,
            degraded_sealed: false,
            dropped: 0,
            invariants: PublishInvariants::default(),
        }),
        history: Mutex::new(options.keep_history.then(Vec::new)),
        watchers: Watchers::new(),
        counters: WaitCounters::default(),
        recorder: recorder.clone(),
        stage,
    });
    (
        BufferWriter {
            shared: Arc::clone(&shared),
        },
        BufferReader { shared },
    )
}

/// The single producer handle of a versioned buffer.
///
/// Owned by exactly one stage. Dropping the writer without publishing a
/// final version *closes* the buffer, which readers observe as
/// [`CoreError::SourceClosed`] — this is how stage panics propagate instead
/// of deadlocking the pipeline.
pub struct BufferWriter<T> {
    shared: Arc<Shared<T>>,
}

impl<T> BufferWriter<T> {
    /// The buffer's diagnostic name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// Atomically publishes an intermediate output version.
    ///
    /// `steps` records how many anytime steps were complete at publication
    /// (the sample size for sampled stages). Returns the new version.
    /// Every blocked reader is woken immediately.
    ///
    /// # Panics
    ///
    /// Panics if a final version has already been published: versions after
    /// the precise output would violate the anytime contract.
    pub fn publish(&mut self, value: T, steps: u64) -> Version {
        self.publish_inner(Arc::new(value), steps, false, false)
    }

    /// [`BufferWriter::publish`] taking an already-shared payload.
    ///
    /// The publication itself is always zero-copy (snapshots share payloads
    /// via `Arc`); this variant additionally lets the producer keep or
    /// recycle the allocation — see [`DoubleBuffer`].
    ///
    /// # Panics
    ///
    /// Panics if a final version has already been published.
    pub fn publish_arc(&mut self, value: Arc<T>, steps: u64) -> Version {
        self.publish_inner(value, steps, false, false)
    }

    /// Atomically publishes the precise (final) output version.
    ///
    /// # Panics
    ///
    /// Panics if a final version has already been published.
    pub fn publish_final(&mut self, value: T, steps: u64) -> Version {
        self.publish_inner(Arc::new(value), steps, true, false)
    }

    /// [`BufferWriter::publish_final`] taking an already-shared payload.
    ///
    /// # Panics
    ///
    /// Panics if a final version has already been published.
    pub fn publish_final_arc(&mut self, value: Arc<T>, steps: u64) -> Version {
        self.publish_inner(value, steps, true, false)
    }

    /// Atomically publishes a terminal **degraded** version: the stage's
    /// precise output is unreachable (its input was degraded, or its
    /// producer is being torn down), and this approximate value is the
    /// best it will ever publish. Terminal like a final version — it
    /// resolves `wait_final*` waits — but flagged via
    /// [`Snapshot::is_degraded`] so consumers know it is not precise.
    ///
    /// # Panics
    ///
    /// Panics if a (precise) final version has already been published.
    pub fn publish_degraded(&mut self, value: T, steps: u64) -> Version {
        self.publish_inner(Arc::new(value), steps, false, true)
    }

    /// [`BufferWriter::publish_degraded`] taking an already-shared payload.
    ///
    /// # Panics
    ///
    /// Panics if a (precise) final version has already been published.
    pub fn publish_degraded_arc(&mut self, value: Arc<T>, steps: u64) -> Version {
        self.publish_inner(value, steps, false, true)
    }

    /// Marks the start of a new run whose step counter begins at
    /// `start_steps`, for the debug-build publication invariants: the
    /// monotone-accuracy floor (Property 2) restarts there, while the
    /// version chain and terminal state persist. Drivers call this when
    /// they begin computing on a fresh input (eager restart) or after a
    /// crash-restart re-enters the drive loop.
    pub(crate) fn begin_run(&mut self, start_steps: u64) {
        if !cfg!(debug_assertions) {
            return;
        }
        lock_unpoisoned(&self.shared.state)
            .invariants
            .begin_run(start_steps);
    }

    fn publish_inner(
        &mut self,
        value: Arc<T>,
        steps: u64,
        is_final: bool,
        degraded: bool,
    ) -> Version {
        let mut st = lock_unpoisoned(&self.shared.state);
        assert!(
            !st.latest.as_ref().is_some_and(Snapshot::is_final),
            "buffer `{}`: cannot publish after the final version",
            self.shared.name
        );
        if st.degraded_sealed {
            // A walking-dead producer (stalled past its watchdog, then
            // recovered) publishing into a sealed buffer: the degraded
            // terminal version already stands, so the late value is
            // dropped — never published, never torn.
            st.dropped += 1;
            let v = st.latest.as_ref().expect("sealed buffer has a snapshot");
            return v.version();
        }
        let snap = Snapshot {
            value,
            meta: SnapshotMeta {
                version: st.next,
                steps,
                is_final,
                degraded,
            },
            published_at: Instant::now(),
        };
        let v = st.next;
        st.next = st.next.next();
        st.invariants
            .check_publish(&self.shared.name, v.get(), steps, is_final || degraded);
        if degraded {
            st.degraded_sealed = true;
        }
        // Lock order state -> history; held only for the O(1) push, so the
        // history lock never delays another publisher or reader for long.
        let mut hist = lock_unpoisoned(&self.shared.history);
        if let Some(hist) = hist.as_mut() {
            hist.push(snap.clone());
        }
        drop(hist);
        st.latest = Some(snap);
        drop(st);
        self.shared.watchers.wake_all();
        self.shared
            .recorder
            .publish(self.shared.stage, v.get(), steps, is_final, degraded);
        v
    }

    /// `true` once the final version has been published.
    pub fn is_final(&self) -> bool {
        lock_unpoisoned(&self.shared.state)
            .latest
            .as_ref()
            .is_some_and(Snapshot::is_final)
    }

    /// `true` once a terminal (final or degraded) version stands.
    pub fn is_terminal(&self) -> bool {
        lock_unpoisoned(&self.shared.state)
            .latest
            .as_ref()
            .is_some_and(Snapshot::is_terminal)
    }

    /// The most recently published snapshot, if any. Used by restarted
    /// stage drivers to resume from their own published progress.
    pub fn latest(&self) -> Option<Snapshot<T>> {
        lock_unpoisoned(&self.shared.state).latest.clone()
    }

    /// Seals the buffer **degraded**: re-publishes the latest version with
    /// the degraded flag, making it terminal. Returns `false` (and seals
    /// nothing) if no version was ever published — there is no approximate
    /// output to degrade to. Idempotent once terminal.
    ///
    /// Called by the supervisor on permanent producer death under
    /// [`crate::FailurePolicy::Degrade`], or by the watchdog on a stall.
    pub fn seal_degraded(&mut self) -> bool {
        self.shared.do_seal_degraded()
    }
}

impl<T: Send + Sync + 'static> BufferWriter<T> {
    /// A type-erased supervisory handle to this buffer.
    pub(crate) fn control_handle(&self) -> Arc<dyn BufferControl> {
        Arc::clone(&self.shared) as Arc<dyn BufferControl>
    }
}

impl<T> Drop for BufferWriter<T> {
    fn drop(&mut self) {
        let mut st = lock_unpoisoned(&self.shared.state);
        st.closed = true;
        drop(st);
        self.shared.watchers.wake_all();
    }
}

impl<T> fmt::Debug for BufferWriter<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = lock_unpoisoned(&self.shared.state);
        f.debug_struct("BufferWriter")
            .field("name", &self.shared.name)
            .field("next", &st.next)
            .field("degraded_sealed", &st.degraded_sealed)
            .finish()
    }
}

/// A consumer handle of a versioned buffer.
///
/// Cloneable: any number of dependent stages and monitors may observe the
/// same buffer. Readers never block writers beyond the brief snapshot swap.
pub struct BufferReader<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for BufferReader<T> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> BufferReader<T> {
    /// The buffer's diagnostic name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// The most recently published snapshot, if any.
    pub fn latest(&self) -> Option<Snapshot<T>> {
        lock_unpoisoned(&self.shared.state).latest.clone()
    }

    /// `true` once the producer has exited (with or without a final output).
    pub fn is_closed(&self) -> bool {
        lock_unpoisoned(&self.shared.state).closed
    }

    /// `true` once the final (precise) version has been published.
    pub fn is_final(&self) -> bool {
        lock_unpoisoned(&self.shared.state)
            .latest
            .as_ref()
            .is_some_and(Snapshot::is_final)
    }

    /// `true` once the buffer holds a terminal **degraded** version: its
    /// producer failed permanently and the latest approximate output is
    /// the best it will ever publish.
    pub fn is_degraded(&self) -> bool {
        lock_unpoisoned(&self.shared.state)
            .latest
            .as_ref()
            .is_some_and(Snapshot::is_degraded)
    }

    /// `true` once a terminal (final or degraded) version stands.
    pub fn is_terminal(&self) -> bool {
        lock_unpoisoned(&self.shared.state)
            .latest
            .as_ref()
            .is_some_and(Snapshot::is_terminal)
    }

    /// Publications dropped after a degraded seal (a stalled producer
    /// that kept publishing into its sealed buffer).
    pub fn dropped_publishes(&self) -> u64 {
        lock_unpoisoned(&self.shared.state).dropped
    }

    /// All published snapshots, oldest first, when the buffer was created
    /// with [`BufferOptions::keep_history`]; `None` otherwise.
    ///
    /// Touches only the dedicated history lock — never the state lock — so
    /// reading a long history cannot delay publication, `latest()`, or any
    /// blocked waiter. The returned snapshots share payloads with the
    /// buffer (`Arc` clones, no payload copies).
    pub fn history(&self) -> Option<Vec<Snapshot<T>>> {
        lock_unpoisoned(&self.shared.history).clone()
    }

    /// Counters for blocking waits on this buffer: waits, wakeups,
    /// spurious wakeups, total blocked time, and publication-to-observation
    /// latency. Buffers are per-stage, so these are the per-stage wait
    /// metrics of the control plane.
    pub fn wait_stats(&self) -> WaitStats {
        self.shared.counters.snapshot()
    }

    /// Registers an owned wake target (a runtime task waker) for wakeups
    /// on every publication or close. Idempotent, so pollable stage
    /// drivers call it at the top of every poll slice.
    pub(crate) fn subscribe_target(&self, target: &std::sync::Arc<dyn crate::notify::WakeTarget>) {
        self.shared.watchers.subscribe_target(target);
    }

    /// Waits for a version newer than `than` (or any version if `None`),
    /// aborting promptly if `ctl` stops the automaton.
    ///
    /// # Errors
    ///
    /// - [`CoreError::Stopped`] if the automaton is stopped while waiting.
    /// - [`CoreError::SourceClosed`] if the producer exits without
    ///   publishing anything newer.
    pub fn wait_newer(&self, than: Option<Version>, ctl: &ControlToken) -> Result<Snapshot<T>> {
        self.wait_for_snapshot(Some(ctl), None, |snap| {
            than.is_none_or(|v| snap.version() > v)
        })
    }

    /// Waits up to `timeout` for a version newer than `than`.
    ///
    /// The deadline is exact: there is no polling quantum to overshoot.
    ///
    /// # Errors
    ///
    /// - [`CoreError::Timeout`] if nothing newer appears in time.
    /// - [`CoreError::SourceClosed`] if the producer exits first.
    pub fn wait_newer_timeout(
        &self,
        than: Option<Version>,
        timeout: Duration,
    ) -> Result<Snapshot<T>> {
        self.wait_for_snapshot(None, Some(Instant::now() + timeout), |snap| {
            than.is_none_or(|v| snap.version() > v)
        })
    }

    /// Waits up to `timeout` for a version newer than `than`, aborting
    /// promptly if `ctl` stops the automaton.
    ///
    /// # Errors
    ///
    /// - [`CoreError::Stopped`] if the automaton is stopped while waiting.
    /// - [`CoreError::Timeout`] if nothing newer appears in time.
    /// - [`CoreError::SourceClosed`] if the producer exits first.
    pub fn wait_newer_timeout_with(
        &self,
        than: Option<Version>,
        timeout: Duration,
        ctl: &ControlToken,
    ) -> Result<Snapshot<T>> {
        self.wait_for_snapshot(Some(ctl), Some(Instant::now() + timeout), |snap| {
            than.is_none_or(|v| snap.version() > v)
        })
    }

    /// Waits up to `timeout` for the terminal version: the final (precise)
    /// output or, under graceful degradation
    /// ([`crate::FailurePolicy::Degrade`]), the last published approximate
    /// version flagged via [`Snapshot::is_degraded`].
    ///
    /// The deadline is exact: there is no polling quantum to overshoot.
    ///
    /// # Errors
    ///
    /// - [`CoreError::Timeout`] if no terminal version appears in time.
    /// - [`CoreError::SourceClosed`] if the producer exits without one.
    pub fn wait_final_timeout(&self, timeout: Duration) -> Result<Snapshot<T>> {
        self.wait_for_snapshot(None, Some(Instant::now() + timeout), Snapshot::is_terminal)
    }

    /// Waits up to `timeout` for the terminal (final or degraded) version,
    /// aborting promptly — at wakeup latency, not a polling quantum — if
    /// `ctl` stops the automaton.
    ///
    /// # Errors
    ///
    /// - [`CoreError::Stopped`] if the automaton is stopped while waiting.
    /// - [`CoreError::Timeout`] if no terminal version appears in time.
    /// - [`CoreError::SourceClosed`] if the producer exits without one.
    pub fn wait_final_timeout_with(
        &self,
        timeout: Duration,
        ctl: &ControlToken,
    ) -> Result<Snapshot<T>> {
        self.wait_for_snapshot(
            Some(ctl),
            Some(Instant::now() + timeout),
            Snapshot::is_terminal,
        )
    }

    /// The shared event-driven wait loop behind every `wait_*` method.
    ///
    /// Checks, in priority order: stop (when `ctl` is given), an accepted
    /// snapshot, producer exit, then the deadline. If none applies it
    /// blocks on a wait set registered with the buffer's watchers (and the
    /// control token's, when given) so any publication, close, or control
    /// transition wakes it immediately.
    fn wait_for_snapshot(
        &self,
        ctl: Option<&ControlToken>,
        deadline: Option<Instant>,
        accept: impl Fn(&Snapshot<T>) -> bool,
    ) -> Result<Snapshot<T>> {
        let check = |st: &State<T>, after_wake: bool| -> Option<Result<Snapshot<T>>> {
            if ctl.is_some_and(ControlToken::is_stopped) {
                return Some(Err(CoreError::Stopped));
            }
            if let Some(snap) = st.latest.as_ref() {
                if accept(snap) {
                    if after_wake {
                        self.shared
                            .counters
                            .record_observation(snap.published_at.elapsed());
                        self.shared
                            .recorder
                            .observe(self.shared.stage, snap.version().get());
                    }
                    return Some(Ok(snap.clone()));
                }
            }
            if st.closed {
                return Some(Err(CoreError::SourceClosed {
                    buffer: self.shared.name.clone(),
                }));
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Some(Err(CoreError::Timeout));
            }
            None
        };

        // Fast path: resolve without registering or blocking.
        if let Some(result) = check(&lock_unpoisoned(&self.shared.state), false) {
            return result;
        }

        // Slow path: register for wakeups from the buffer and (if given)
        // the control token, then block between predicate checks.
        let ws = WaitSet::new();
        let _buffer_watch = self.shared.watchers.subscribe(&ws);
        let _ctl_watch = ctl.map(|c| c.subscribe(&ws));
        self.shared.counters.record_wait_entered();
        let blocked_since = Instant::now();
        let mut woken = false;
        loop {
            let seen = ws.epoch();
            if let Some(result) = check(&lock_unpoisoned(&self.shared.state), woken) {
                self.shared
                    .counters
                    .record_wait_finished(blocked_since.elapsed());
                return result;
            }
            if woken {
                // A wakeup delivered between the previous check and this
                // one did not satisfy the wait.
                self.shared.counters.record_spurious_wakeup();
            }
            woken = match deadline {
                Some(d) => ws.wait_deadline(seen, d),
                None => {
                    ws.wait(seen);
                    true
                }
            };
            if woken {
                self.shared.counters.record_wakeup();
            }
        }
    }
}

/// A two-slot publication recycler for producers that rebuild their whole
/// output every publication (the drive loops behind `SampledMap`,
/// distributive and parallel runners).
///
/// Publishing through the double buffer alternates between two `Arc`
/// slots. When it is a slot's turn again, the buffer's `latest` has moved
/// on two versions, so — unless a reader still pins that snapshot or
/// history retains it — the slot's `Arc` is unique again and its heap
/// allocation is reused via `clone_from` (for `Vec`-backed payloads this
/// is a capacity-preserving copy, no allocation). Readers are never
/// affected: a pinned snapshot simply forces one fresh allocation.
#[derive(Debug)]
pub struct DoubleBuffer<T> {
    slots: [Option<Arc<T>>; 2],
    next: usize,
    recycled: u64,
    allocated: u64,
}

impl<T> Default for DoubleBuffer<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> DoubleBuffer<T> {
    /// Creates an empty recycler.
    pub fn new() -> Self {
        Self {
            slots: [None, None],
            next: 0,
            recycled: 0,
            allocated: 0,
        }
    }

    /// Publications that reused a retired allocation.
    pub fn recycled(&self) -> u64 {
        self.recycled
    }

    /// Publications that had to allocate a fresh payload.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }
}

impl<T: Clone> DoubleBuffer<T> {
    /// Stages `value` into the next slot, recycling its retired allocation
    /// when no snapshot still references it.
    fn stage(&mut self, value: &T) -> Arc<T> {
        let slot = &mut self.slots[self.next];
        self.next ^= 1;
        let arc = match slot.take() {
            Some(mut retired) => match Arc::get_mut(&mut retired) {
                Some(payload) => {
                    payload.clone_from(value);
                    self.recycled += 1;
                    retired
                }
                None => {
                    // A reader (or history) still pins the retired
                    // version; leave it alone and allocate fresh.
                    self.allocated += 1;
                    Arc::new(value.clone())
                }
            },
            None => {
                self.allocated += 1;
                Arc::new(value.clone())
            }
        };
        *slot = Some(Arc::clone(&arc));
        arc
    }

    /// Publishes an intermediate version of `value` through `writer`,
    /// recycling a retired allocation when possible.
    ///
    /// # Panics
    ///
    /// Panics if a final version has already been published.
    pub fn publish_from(&mut self, writer: &mut BufferWriter<T>, value: &T, steps: u64) -> Version {
        let staged = self.stage(value);
        writer.publish_arc(staged, steps)
    }

    /// Publishes the final version of `value` through `writer`.
    ///
    /// # Panics
    ///
    /// Panics if a final version has already been published.
    pub fn publish_final_from(
        &mut self,
        writer: &mut BufferWriter<T>,
        value: &T,
        steps: u64,
    ) -> Version {
        let staged = self.stage(value);
        writer.publish_final_arc(staged, steps)
    }

    /// Publishes a terminal degraded version of `value` through `writer`.
    ///
    /// # Panics
    ///
    /// Panics if a (precise) final version has already been published.
    pub fn publish_degraded_from(
        &mut self,
        writer: &mut BufferWriter<T>,
        value: &T,
        steps: u64,
    ) -> Version {
        let staged = self.stage(value);
        writer.publish_degraded_arc(staged, steps)
    }
}

impl<T> fmt::Debug for BufferReader<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = lock_unpoisoned(&self.shared.state);
        f.debug_struct("BufferReader")
            .field("name", &self.shared.name)
            .field("latest", &st.latest.as_ref().map(|s| s.meta()))
            .field("closed", &st.closed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn publish_and_read_latest() {
        let (mut w, r) = versioned::<i32>("t");
        assert!(r.latest().is_none());
        let v1 = w.publish(10, 1);
        assert_eq!(v1, Version::FIRST);
        assert_eq!(*r.latest().unwrap().value(), 10);
        w.publish(20, 2);
        let snap = r.latest().unwrap();
        assert_eq!(*snap.value(), 20);
        assert_eq!(snap.version().get(), 2);
        assert!(!snap.is_final());
    }

    #[test]
    fn final_version_is_sticky() {
        let (mut w, r) = versioned::<i32>("t");
        w.publish_final(7, 3);
        assert!(w.is_final());
        assert!(r.is_final());
        assert_eq!(r.latest().unwrap().steps(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot publish after the final version")]
    fn publish_after_final_panics() {
        let (mut w, _r) = versioned::<i32>("t");
        w.publish_final(1, 1);
        w.publish(2, 2);
    }

    #[test]
    fn history_records_all_versions() {
        let (mut w, r) = versioned_with::<i32>("t", BufferOptions { keep_history: true });
        w.publish(1, 1);
        w.publish(2, 2);
        w.publish_final(3, 3);
        let hist = r.history().unwrap();
        assert_eq!(hist.len(), 3);
        assert_eq!(*hist[0].value(), 1);
        assert!(hist[2].is_final());
    }

    #[test]
    fn no_history_by_default() {
        let (mut w, r) = versioned::<i32>("t");
        w.publish(1, 1);
        assert!(r.history().is_none());
    }

    #[test]
    fn wait_newer_sees_concurrent_publish() {
        let (mut w, r) = versioned::<i32>("t");
        let ctl = ControlToken::new();
        let h = thread::spawn(move || r.wait_newer(None, &ctl).map(|s| *s.value()));
        thread::sleep(Duration::from_millis(10));
        w.publish(99, 1);
        assert_eq!(h.join().unwrap().unwrap(), 99);
    }

    #[test]
    fn wait_newer_skips_stale_versions() {
        let (mut w, r) = versioned::<i32>("t");
        let ctl = ControlToken::new();
        let v1 = w.publish(1, 1);
        let h = {
            let r = r.clone();
            let ctl = ctl.clone();
            thread::spawn(move || r.wait_newer(Some(v1), &ctl).map(|s| *s.value()))
        };
        thread::sleep(Duration::from_millis(10));
        w.publish(2, 2);
        assert_eq!(h.join().unwrap().unwrap(), 2);
    }

    #[test]
    fn wait_newer_aborts_on_stop() {
        let (_w, r) = versioned::<i32>("t");
        let ctl = ControlToken::new();
        let ctl2 = ctl.clone();
        let h = thread::spawn(move || r.wait_newer(None, &ctl2));
        thread::sleep(Duration::from_millis(10));
        ctl.stop();
        assert!(matches!(h.join().unwrap(), Err(CoreError::Stopped)));
    }

    #[test]
    fn dropped_writer_closes_buffer() {
        let (w, r) = versioned::<i32>("orphan");
        drop(w);
        assert!(r.is_closed());
        let ctl = ControlToken::new();
        assert!(matches!(
            r.wait_newer(None, &ctl),
            Err(CoreError::SourceClosed { .. })
        ));
    }

    #[test]
    fn closed_buffer_still_serves_latest() {
        let (mut w, r) = versioned::<i32>("t");
        w.publish(5, 1);
        drop(w);
        // Last published version survives the producer.
        assert_eq!(*r.latest().unwrap().value(), 5);
        // But waiting for something newer errors out.
        let ctl = ControlToken::new();
        assert!(matches!(
            r.wait_newer(Some(Version::FIRST), &ctl),
            Err(CoreError::SourceClosed { .. })
        ));
        // A stale bound is satisfied by the surviving version.
        assert!(r.wait_newer(None, &ctl).is_ok());
    }

    #[test]
    fn wait_newer_timeout_times_out() {
        let (_w, r) = versioned::<i32>("t");
        let err = r.wait_newer_timeout(None, Duration::from_millis(10));
        assert!(matches!(err, Err(CoreError::Timeout)));
    }

    #[test]
    fn wait_final_timeout_success() {
        let (mut w, r) = versioned::<i32>("t");
        w.publish(1, 1);
        let h = thread::spawn(move || r.wait_final_timeout(Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(10));
        w.publish_final(2, 2);
        assert_eq!(*h.join().unwrap().unwrap().value(), 2);
    }

    #[test]
    fn wait_final_timeout_with_aborts_on_stop() {
        let (_w, r) = versioned::<i32>("t");
        let ctl = ControlToken::new();
        let ctl2 = ctl.clone();
        let h = thread::spawn(move || {
            let start = Instant::now();
            let result = r.wait_final_timeout_with(Duration::from_secs(60), &ctl2);
            (result, start.elapsed())
        });
        thread::sleep(Duration::from_millis(20));
        ctl.stop();
        let (result, waited) = h.join().unwrap();
        assert!(matches!(result, Err(CoreError::Stopped)));
        assert!(
            waited < Duration::from_secs(1),
            "stop took {waited:?} to interrupt the wait"
        );
    }

    #[test]
    fn wait_newer_timeout_with_sees_publication() {
        let (mut w, r) = versioned::<i32>("t");
        let ctl = ControlToken::new();
        let h = {
            let ctl = ctl.clone();
            thread::spawn(move || {
                r.wait_newer_timeout_with(None, Duration::from_secs(5), &ctl)
                    .map(|s| *s.value())
            })
        };
        thread::sleep(Duration::from_millis(10));
        w.publish(41, 1);
        assert_eq!(h.join().unwrap().unwrap(), 41);
    }

    #[test]
    fn zero_duration_timeout_returns_immediately() {
        // Regression: quantized waits used to turn tiny timeouts into a
        // full polling quantum. A zero timeout must resolve immediately —
        // to a snapshot if one qualifies, otherwise to Timeout.
        let (mut w, r) = versioned::<i32>("t");
        let start = Instant::now();
        let err = r.wait_newer_timeout(None, Duration::ZERO);
        assert!(matches!(err, Err(CoreError::Timeout)));
        assert!(start.elapsed() < Duration::from_millis(5));
        w.publish(1, 1);
        let ok = r.wait_newer_timeout(None, Duration::ZERO);
        assert_eq!(*ok.unwrap().value(), 1);
        let err = r.wait_final_timeout(Duration::ZERO);
        assert!(matches!(err, Err(CoreError::Timeout)));
    }

    #[test]
    fn sub_millisecond_timeout_is_respected() {
        // Regression: the old WAIT_QUANTUM floor (1 ms) meant a 200 µs
        // timeout overshot its deadline by up to 5x. The event-driven wait
        // honors the exact deadline.
        let (_w, r) = versioned::<i32>("t");
        let timeout = Duration::from_micros(200);
        let start = Instant::now();
        let err = r.wait_newer_timeout(None, timeout);
        let elapsed = start.elapsed();
        assert!(matches!(err, Err(CoreError::Timeout)));
        assert!(elapsed >= timeout, "returned before the deadline");
        assert!(
            elapsed < timeout + Duration::from_millis(5),
            "overshot a sub-millisecond deadline by {:?}",
            elapsed - timeout
        );
    }

    #[test]
    fn wait_stats_count_blocking_waits() {
        let (mut w, r) = versioned::<i32>("t");
        assert_eq!(r.wait_stats(), WaitStats::default());
        // Fast-path read: no blocking, no counters.
        w.publish(1, 1);
        let ctl = ControlToken::new();
        r.wait_newer(None, &ctl).unwrap();
        assert_eq!(r.wait_stats().waits, 0);
        // Blocking wait: counted, with publication-to-observation latency.
        let h = {
            let r = r.clone();
            let ctl = ctl.clone();
            thread::spawn(move || r.wait_newer(Some(Version::FIRST), &ctl).unwrap())
        };
        thread::sleep(Duration::from_millis(10));
        w.publish(2, 2);
        h.join().unwrap();
        let stats = r.wait_stats();
        assert_eq!(stats.waits, 1);
        assert!(stats.wakeups >= 1);
        assert_eq!(stats.observations, 1);
        assert!(stats.total_wait >= Duration::from_millis(5));
        assert!(stats.total_publish_to_observe < Duration::from_millis(100) * stats.observations as u32);
    }

    #[test]
    fn atomic_publication_no_torn_reads() {
        // Publish vectors whose elements must agree; readers must never see
        // a mixed version (Property 3).
        let (mut w, r) = versioned::<Vec<u64>>("t");
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let r = r.clone();
            let stop = Arc::clone(&stop);
            readers.push(thread::spawn(move || {
                // relaxed: test stop flag; guards no data
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    if let Some(snap) = r.latest() {
                        let v = snap.value();
                        assert!(v.iter().all(|&x| x == v[0]), "torn read: {v:?}");
                    }
                }
            }));
        }
        for i in 0..1000u64 {
            w.publish(vec![i; 64], i);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed); // relaxed: test stop flag; guards no data
        for h in readers {
            h.join().unwrap();
        }
    }

    #[test]
    fn seal_degraded_makes_latest_terminal() {
        let (mut w, r) = versioned_with::<i32>("t", BufferOptions { keep_history: true });
        w.publish(5, 2);
        assert!(w.seal_degraded());
        let snap = r.latest().unwrap();
        assert!(snap.is_degraded());
        assert!(snap.is_terminal());
        assert!(!snap.is_final());
        assert_eq!(*snap.value(), 5);
        assert_eq!(snap.steps(), 2);
        assert!(r.is_degraded());
        // wait_final* resolves to the degraded terminal version.
        let got = r.wait_final_timeout(Duration::from_secs(5)).unwrap();
        assert!(got.is_degraded());
        assert_eq!(*got.value(), 5);
        // The seal is a real (monotone) version in the history.
        let hist = r.history().unwrap();
        assert_eq!(hist.len(), 2);
        assert!(hist[1].version() > hist[0].version());
    }

    #[test]
    fn seal_degraded_without_publications_fails() {
        let (mut w, r) = versioned::<i32>("t");
        assert!(!w.seal_degraded());
        assert!(!r.is_degraded());
        assert!(r.latest().is_none());
    }

    #[test]
    fn seal_degraded_is_idempotent_and_respects_final() {
        let (mut w, r) = versioned::<i32>("t");
        w.publish_final(9, 1);
        // Already precise-terminal: sealing is a no-op success.
        assert!(w.seal_degraded());
        assert!(r.is_final());
        assert!(!r.is_degraded());
        let (mut w2, r2) = versioned::<i32>("u");
        w2.publish(1, 1);
        assert!(w2.seal_degraded());
        let v = r2.latest().unwrap().version();
        assert!(w2.seal_degraded());
        assert_eq!(
            r2.latest().unwrap().version(),
            v,
            "second seal re-published"
        );
    }

    #[test]
    fn publishes_after_degraded_seal_are_dropped() {
        let (mut w, r) = versioned::<i32>("t");
        w.publish(1, 1);
        w.seal_degraded();
        let sealed_version = r.latest().unwrap().version();
        w.publish(99, 2);
        w.publish_final(100, 3);
        let snap = r.latest().unwrap();
        assert_eq!(
            snap.version(),
            sealed_version,
            "late publish replaced the seal"
        );
        assert_eq!(*snap.value(), 1);
        assert_eq!(r.dropped_publishes(), 2);
    }

    #[test]
    fn publish_degraded_is_terminal_and_flagged() {
        let (mut w, r) = versioned::<i32>("t");
        w.publish(1, 1);
        w.publish_degraded(2, 2);
        let snap = r.wait_final_timeout(Duration::ZERO).unwrap();
        assert!(snap.is_degraded());
        assert_eq!(*snap.value(), 2);
        // Terminal: further publications are dropped.
        w.publish(3, 3);
        assert_eq!(*r.latest().unwrap().value(), 2);
        assert_eq!(r.dropped_publishes(), 1);
    }

    #[test]
    fn publish_arc_shares_payload_with_readers() {
        // Zero-copy publication: the reader's snapshot holds the very Arc
        // the producer published — no payload bytes are duplicated.
        let (mut w, r) = versioned::<Vec<u8>>("t");
        let payload = Arc::new(vec![7u8; 1024]);
        w.publish_arc(Arc::clone(&payload), 1);
        let snap = r.latest().unwrap();
        assert!(
            Arc::ptr_eq(&snap.value_arc(), &payload),
            "payload was copied"
        );
        // Exactly three references: ours, `latest`, the snapshot.
        assert_eq!(Arc::strong_count(&payload), 3);
        drop(snap);
        // Replacing the version releases the buffer's reference.
        w.publish_final_arc(Arc::new(vec![8u8; 1024]), 2);
        assert_eq!(Arc::strong_count(&payload), 1);
    }

    #[test]
    fn double_buffer_recycles_retired_allocations() {
        let (mut w, r) = versioned::<Vec<u8>>("t");
        let mut db = DoubleBuffer::new();
        let value = vec![1u8; 4096];
        db.publish_from(&mut w, &value, 1);
        db.publish_from(&mut w, &value, 2);
        assert_eq!(db.allocated(), 2, "both slots start empty");
        // From the third publication on, the two-versions-old slot is no
        // longer referenced by `latest`, so its allocation is reused.
        for steps in 3..=10 {
            db.publish_from(&mut w, &value, steps);
        }
        assert_eq!(db.allocated(), 2);
        assert_eq!(db.recycled(), 8);
        assert_eq!(*r.latest().unwrap().value(), value);
        // A reader pinning a snapshot forces a fresh allocation instead of
        // mutating the version it still observes.
        let pinned = r.latest().unwrap();
        db.publish_from(&mut w, &value, 11);
        db.publish_from(&mut w, &value, 12);
        db.publish_from(&mut w, &value, 13);
        assert_eq!(*pinned.value(), value, "pinned snapshot mutated");
        assert!(db.allocated() >= 3, "pinned snapshot must force an alloc");
    }

    #[test]
    fn history_read_does_not_block_publication() {
        // Regression: history() used to clone the whole snapshot vector
        // while holding the state lock, stalling publish/latest/waits for
        // the duration. With the dedicated history lock, a slow history
        // reader cannot delay the writer.
        let (mut w, r) = versioned_with::<Vec<u8>>("t", BufferOptions { keep_history: true });
        for i in 0..512u64 {
            w.publish(vec![0u8; 64], i + 1);
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let r = r.clone();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                // relaxed: test stop flag; guards no data
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let hist = r.history().unwrap();
                    assert!(hist.len() >= 512);
                }
            })
        };
        // Publications proceed under continuous history reads; each one
        // must complete promptly (it only ever holds the history lock for
        // a push, never for a clone).
        let mut worst = Duration::ZERO;
        for i in 0..256u64 {
            let t = Instant::now();
            w.publish(vec![0u8; 64], 513 + i);
            worst = worst.max(t.elapsed());
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed); // relaxed: test stop flag; guards no data
        reader.join().unwrap();
        assert!(
            worst < Duration::from_millis(250),
            "a publish stalled {worst:?} behind history readers"
        );
    }

    #[test]
    fn versions_strictly_increase() {
        let (mut w, r) = versioned::<i32>("t");
        let mut last = None;
        for i in 0..10 {
            let v = w.publish(i, i as u64);
            if let Some(prev) = last {
                assert!(v > prev);
            }
            last = Some(v);
        }
        assert_eq!(r.latest().unwrap().version().get(), 10);
    }
}
