//! Stage supervision: failure policies, graceful degradation, and the
//! progress watchdog.
//!
//! The automaton's defining guarantee (paper §III-A) is that every
//! published version is a valid whole-application output. Fail-stop error
//! handling squanders that guarantee: a single stage panic or stall
//! collapses the pipeline into an error, throwing away exactly the
//! approximate outputs the model exists to preserve. This module makes
//! failure handling a per-stage policy instead:
//!
//! - [`FailurePolicy::FailStop`] — the stage's first failure is permanent
//!   and propagates as an error (the historical behavior, still the
//!   default);
//! - [`FailurePolicy::Restart`] — a panicked stage driver is re-run on the
//!   same thread, up to `max_attempts` times with a fixed backoff.
//!   Diffusive stages resume from their own output buffer (the last
//!   published version *is* the working state) and iterative stages resume
//!   from the next unpublished level, so restarts do not repeat completed
//!   anytime steps;
//! - [`FailurePolicy::Degrade`] — on permanent producer death the stage's
//!   output buffer is *sealed degraded*: its last published approximate
//!   version is re-published with the degraded flag set, downstream
//!   `wait_final*` calls resolve to it instead of erroring, and dependent
//!   stages propagate the flag to the whole-application output.
//!
//! Orthogonally, a per-stage **progress watchdog** ([`Watchdog`]) detects
//! stalls: if a stage publishes no new version within its heartbeat, the
//! supervisor records a stall and escalates per [`StallAction`] — count it,
//! stop the automaton, or seal the stage degraded so the rest of the
//! pipeline completes around it. The watchdog is event-driven like
//! everything else in the control plane: it blocks on a wait set
//! subscribed to every watched buffer and wakes on publications, never
//! polling between heartbeat deadlines.

use crate::buffer::BufferControl;
use crate::control::ControlToken;
use crate::metrics::FaultCounters;
use crate::notify::WaitSet;
use crate::trace::{EventKind, Recorder, StageId};
use crate::version::Version;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What the runtime does when a stage driver fails (panics or returns an
/// error other than a stop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// The first failure is permanent and propagates as an error from
    /// [`crate::Automaton::join`]. Dependent stages observe
    /// [`crate::CoreError::SourceClosed`]. The default.
    #[default]
    FailStop,
    /// Re-run a *panicked* stage driver on the same thread, up to
    /// `max_attempts` extra attempts with `backoff` between them.
    ///
    /// Restarts resume: a [`crate::Diffusive`] stage re-seeds its working
    /// output from its last published version and an [`crate::Iterative`]
    /// stage continues from the next unpublished level (see
    /// [`crate::AnytimeBody::resume`]), so completed anytime steps are not
    /// repeated. Non-panic failures (e.g. a closed upstream) are permanent
    /// immediately — restarting cannot help them. Exhausting the attempts
    /// makes the failure permanent and fail-stop.
    Restart {
        /// Maximum restart attempts after the initial run.
        max_attempts: u32,
        /// Delay before each restart (interrupted promptly by a stop).
        backoff: Duration,
    },
    /// On permanent death, seal the stage's output buffer *degraded*: the
    /// last published approximate version is re-published with
    /// [`crate::Snapshot::is_degraded`] set, downstream `wait_final*`
    /// resolves to it, and dependent stages propagate the flag. If the
    /// stage died before publishing anything there is nothing to degrade
    /// to, and the failure falls back to fail-stop.
    Degrade,
}

/// How the watchdog escalates a detected stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StallAction {
    /// Count the stall in [`crate::metrics::FaultStats`] and keep waiting.
    /// The stall re-arms if the stage publishes again.
    #[default]
    Log,
    /// Stop the whole automaton ([`ControlToken::stop`]): every stage's
    /// latest published output remains readable, per the anytime contract.
    Stop,
    /// Seal the stalled stage's buffer degraded so downstream stages and
    /// `wait_final*` callers complete with its last published version.
    /// Late publications from the stalled (but still running) producer are
    /// dropped and counted, never torn.
    Degrade,
}

/// Per-stage progress watchdog configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watchdog {
    /// A stall is declared when no new version is published for this long.
    pub heartbeat: Duration,
    /// Escalation on stall.
    pub on_stall: StallAction,
}

/// Per-stage supervision: failure policy plus optional watchdog.
///
/// Attached to a stage through [`crate::StageOptions::supervise`] (or the
/// [`crate::StageOptions::failure_policy`] / [`crate::StageOptions::watchdog`]
/// shorthands).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Supervision {
    /// What to do when the stage driver fails.
    pub policy: FailurePolicy,
    /// Optional publication-progress watchdog.
    pub watchdog: Option<Watchdog>,
}

impl Supervision {
    /// Fail-stop supervision (the default).
    pub fn fail_stop() -> Self {
        Self::default()
    }

    /// Restart supervision with the given attempt budget and backoff.
    pub fn restart(max_attempts: u32, backoff: Duration) -> Self {
        Self {
            policy: FailurePolicy::Restart {
                max_attempts,
                backoff,
            },
            watchdog: None,
        }
    }

    /// Degrade-on-death supervision.
    pub fn degrade() -> Self {
        Self {
            policy: FailurePolicy::Degrade,
            watchdog: None,
        }
    }

    /// Adds a progress watchdog to this supervision.
    pub fn with_watchdog(mut self, heartbeat: Duration, on_stall: StallAction) -> Self {
        self.watchdog = Some(Watchdog {
            heartbeat,
            on_stall,
        });
        self
    }
}

/// Sleeps for `backoff` between restart attempts, aborting early if the
/// automaton stops. Returns `false` if the stop arrived first.
///
/// Also the serve governor's tick sleep ([`crate::serve::ServePool`]'s
/// lifecycle thread): the same interruptible-wait protocol means pool
/// shutdown never waits out a governor tick.
pub(crate) fn backoff_interruptible(ctl: &ControlToken, backoff: Duration) -> bool {
    if backoff.is_zero() {
        return !ctl.is_stopped();
    }
    let ws = WaitSet::new();
    let _watch = ctl.subscribe(&ws);
    let deadline = Instant::now() + backoff;
    loop {
        let seen = ws.epoch();
        if ctl.is_stopped() {
            return false;
        }
        if !ws.wait_deadline(seen, deadline) {
            return !ctl.is_stopped();
        }
    }
}

/// Computes the delay before retry `attempt` (0-based) of a failed
/// request: capped exponential backoff with deterministic jitter.
///
/// The raw delay doubles per attempt from `base` and saturates at `cap`;
/// the jittered delay is drawn from `[raw/2, raw]` by a SplitMix64-style
/// hash of `(salt, attempt)`, so the same request retries on the same
/// schedule every run (chaos tests reproduce from their seed) while
/// distinct requests decorrelate instead of retrying in lockstep.
pub(crate) fn retry_backoff(base: Duration, cap: Duration, attempt: u32, salt: u64) -> Duration {
    if base.is_zero() {
        return Duration::ZERO;
    }
    let raw = base
        .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
        .min(cap);
    let half = raw / 2;
    let span = raw.saturating_sub(half);
    if span.is_zero() {
        return raw;
    }
    // SplitMix64 finalizer over (salt, attempt): deterministic, well-mixed.
    let mut z = salt
        .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    half + Duration::from_nanos(z % (span.as_nanos().max(1) as u64))
}

/// One stage under watchdog observation.
pub(crate) struct WatchedStage {
    pub(crate) control: Arc<dyn BufferControl>,
    pub(crate) cfg: Watchdog,
    /// The stage's interned trace id, for stall events.
    pub(crate) stage: StageId,
}

struct WatchState {
    stage: WatchedStage,
    last_version: Option<Version>,
    last_progress: Instant,
    /// Set while a stall stands; cleared when the stage publishes again
    /// (so a Log-policy stage can stall, recover, and stall again).
    stalled: bool,
    /// Set once the stall was escalated terminally (Stop/Degrade) or the
    /// buffer settled; the watchdog stops tracking the stage.
    retired: bool,
}

/// Spawns the supervisor (watchdog) thread for the given stages.
///
/// The thread blocks on a wait set subscribed to every watched buffer and
/// the control token; stage threads additionally bump it on exit. It wakes
/// only on publications, control transitions, stage exits, or the earliest
/// pending heartbeat deadline — no polling quantum.
pub(crate) fn spawn_watchdog(
    watched: Vec<WatchedStage>,
    ctl: ControlToken,
    counters: Arc<FaultCounters>,
    finished: Arc<AtomicUsize>,
    total_stages: usize,
    ws: WaitSet,
    recorder: Recorder,
) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name("anytime-supervisor".into())
        // lint: allow(l6-no-raw-spawn) -- the watchdog observes stalled stages from outside the runtime; as a task it could be starved by the very stall it polices
        .spawn(move || {
            let now = Instant::now();
            let mut states: Vec<WatchState> = watched
                .into_iter()
                .map(|stage| WatchState {
                    last_version: stage.control.latest_version(),
                    last_progress: now,
                    stalled: false,
                    retired: false,
                    stage,
                })
                .collect();
            // Keep the buffer subscriptions alive for the thread's life.
            // The guards borrow from `controls` (not `states`) so the loop
            // below can still mutate the watch states.
            let controls: Vec<Arc<dyn BufferControl>> = states
                .iter()
                .map(|s| Arc::clone(&s.stage.control))
                .collect();
            let _guards: Vec<_> = controls.iter().map(|c| c.subscribe_watch(&ws)).collect();
            let _ctl_guard = ctl.subscribe(&ws);
            loop {
                let seen = ws.epoch();
                if ctl.is_stopped() || finished.load(Ordering::Acquire) == total_stages {
                    return;
                }
                let now = Instant::now();
                let mut next_deadline: Option<Instant> = None;
                for st in &mut states {
                    if st.retired {
                        continue;
                    }
                    if st.stage.control.is_terminal() || st.stage.control.is_closed() {
                        st.retired = true;
                        continue;
                    }
                    let v = st.stage.control.latest_version();
                    if v != st.last_version {
                        st.last_version = v;
                        st.last_progress = now;
                        st.stalled = false;
                    }
                    let deadline = st.last_progress + st.stage.cfg.heartbeat;
                    if now >= deadline {
                        if !st.stalled {
                            st.stalled = true;
                            counters.record_stall();
                            recorder.stage_event(EventKind::Stall, st.stage.stage);
                            match st.stage.cfg.on_stall {
                                StallAction::Log => {}
                                StallAction::Stop => {
                                    ctl.stop();
                                    return;
                                }
                                StallAction::Degrade => {
                                    // Count before sealing: the seal wakes
                                    // waiters, and one of them may read the
                                    // fault stats before this thread runs
                                    // again. The seal succeeds whenever a
                                    // version was published (it is idempotent
                                    // past terminal), so gate on that.
                                    if st.stage.control.latest_version().is_some() {
                                        counters.record_degradation();
                                        st.stage.control.seal_degraded();
                                    }
                                    st.retired = true;
                                }
                            }
                        }
                        // A Log-policy stall stays declared until the next
                        // publication re-arms it; no deadline to track.
                    } else {
                        next_deadline = Some(match next_deadline {
                            Some(d) => d.min(deadline),
                            None => deadline,
                        });
                    }
                }
                if states.iter().all(|s| s.retired) {
                    return;
                }
                match next_deadline {
                    Some(d) => {
                        ws.wait_deadline(seen, d);
                    }
                    None => ws.wait(seen),
                }
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_supervision_is_fail_stop() {
        let s = Supervision::default();
        assert_eq!(s.policy, FailurePolicy::FailStop);
        assert!(s.watchdog.is_none());
        assert_eq!(s, Supervision::fail_stop());
    }

    #[test]
    fn builders_compose() {
        let s = Supervision::restart(3, Duration::from_millis(5))
            .with_watchdog(Duration::from_millis(50), StallAction::Degrade);
        assert_eq!(
            s.policy,
            FailurePolicy::Restart {
                max_attempts: 3,
                backoff: Duration::from_millis(5)
            }
        );
        let wd = s.watchdog.unwrap();
        assert_eq!(wd.heartbeat, Duration::from_millis(50));
        assert_eq!(wd.on_stall, StallAction::Degrade);
        assert_eq!(Supervision::degrade().policy, FailurePolicy::Degrade);
    }

    #[test]
    fn backoff_returns_true_when_undisturbed() {
        let ctl = ControlToken::new();
        let start = Instant::now();
        assert!(backoff_interruptible(&ctl, Duration::from_millis(10)));
        assert!(start.elapsed() >= Duration::from_millis(9));
    }

    #[test]
    fn backoff_aborts_on_stop() {
        let ctl = ControlToken::new();
        let ctl2 = ctl.clone();
        // Rendezvous instead of a sleep quantum: the stop may land either
        // just before or just inside the backoff wait, and the epoch
        // protocol makes both interleavings return promptly.
        let gate = std::sync::Arc::new(std::sync::Barrier::new(2));
        let gate2 = std::sync::Arc::clone(&gate);
        let h = std::thread::spawn(move || {
            gate2.wait();
            let start = Instant::now();
            let survived = backoff_interruptible(&ctl2, Duration::from_secs(30));
            (survived, start.elapsed())
        });
        gate.wait();
        ctl.stop();
        let (survived, waited) = h.join().unwrap();
        assert!(!survived);
        assert!(waited < Duration::from_secs(5));
    }

    #[test]
    fn zero_backoff_is_immediate() {
        let ctl = ControlToken::new();
        assert!(backoff_interruptible(&ctl, Duration::ZERO));
        ctl.stop();
        assert!(!backoff_interruptible(&ctl, Duration::ZERO));
    }

    #[test]
    fn retry_backoff_is_deterministic_and_bounded() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(200);
        for attempt in 0..12 {
            for salt in [0u64, 1, 42, u64::MAX] {
                let d = retry_backoff(base, cap, attempt, salt);
                assert_eq!(d, retry_backoff(base, cap, attempt, salt));
                let raw = base
                    .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
                    .min(cap);
                assert!(d >= raw / 2, "attempt {attempt} salt {salt}: {d:?}");
                assert!(d <= raw, "attempt {attempt} salt {salt}: {d:?}");
            }
        }
    }

    #[test]
    fn retry_backoff_grows_then_caps() {
        let base = Duration::from_millis(8);
        let cap = Duration::from_millis(64);
        // After enough doublings the raw delay is pinned at the cap.
        for attempt in 4..10 {
            let d = retry_backoff(base, cap, attempt, 7);
            assert!(d >= cap / 2 && d <= cap, "attempt {attempt}: {d:?}");
        }
        // Distinct salts decorrelate at least one attempt.
        assert!(
            (0..16u64).any(|s| retry_backoff(base, cap, 3, s) != retry_backoff(base, cap, 3, 99)),
            "jitter never varied across salts"
        );
    }

    #[test]
    fn retry_backoff_zero_base_is_zero() {
        assert_eq!(
            retry_backoff(Duration::ZERO, Duration::from_secs(1), 5, 3),
            Duration::ZERO
        );
    }
}
