//! Control-aware bounded channel for synchronous update streams.
//!
//! The synchronous pipeline (§III-C2) and the parallel sampled map need a
//! bounded producer/consumer queue whose blocking operations participate in
//! the event-driven control plane: a backpressured `send` or an empty-queue
//! `recv` must *block* — no polling quantum — yet wake immediately when
//! space/data appears, when the peer disappears, or when the automaton is
//! stopped or paused. The stdlib and crossbeam channels cannot observe a
//! [`ControlToken`], so a stop would only be noticed by sleeping in slices;
//! this channel subscribes its waiters to both the channel's own
//! [`Watchers`] and the control token's.
//!
//! Pause semantics follow checkpoints: a paused automaton blocks producers
//! and consumers inside [`ControlToken::checkpoint`] until resumed.

use crate::control::ControlToken;
use crate::error::{CoreError, Result};
use crate::metrics::WaitCounters;
use crate::notify::{lock_unpoisoned, WaitSet, WakeTarget, Watchers};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

struct Shared<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    watchers: Watchers,
    counters: WaitCounters,
}

/// Creates a bounded channel whose blocking endpoints observe a
/// [`ControlToken`].
///
/// # Panics
///
/// Panics if `capacity == 0` (rendezvous semantics are not supported).
pub(crate) fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "channel capacity must be >= 1");
    let shared = Arc::new(Shared {
        capacity,
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity),
            senders: 1,
            receiver_alive: true,
        }),
        watchers: Watchers::new(),
        counters: WaitCounters::default(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Producer endpoint. Cloneable for multi-producer use (worker threads).
pub(crate) struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock_unpoisoned(&self.shared.state).senders += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = lock_unpoisoned(&self.shared.state);
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            // The receiver must learn the stream is over.
            self.shared.watchers.wake_all();
        }
    }
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while the queue is full or the automaton is
    /// paused, waking immediately on space, receiver exit, or stop.
    ///
    /// # Errors
    ///
    /// - [`CoreError::Stopped`] if the automaton is stopped (also when the
    ///   receiver vanished *because* of the stop).
    /// - [`CoreError::ChannelClosed`] if the receiver was dropped while
    ///   still running.
    pub(crate) fn send(&self, value: T, ctl: &ControlToken) -> Result<()> {
        let mut value = value;
        // Fast path: space available, nothing to wait for.
        match self.try_push(value, ctl)? {
            None => return Ok(()),
            Some(v) => value = v,
        }
        // Slow path: wait for space, a receiver exit, or a stop.
        let ws = WaitSet::new();
        let _chan_watch = self.shared.watchers.subscribe(&ws);
        let _ctl_watch = ctl.subscribe(&ws);
        self.shared.counters.record_wait_entered();
        let blocked_since = Instant::now();
        let mut woken = false;
        loop {
            let seen = ws.epoch();
            match self.try_push(value, ctl) {
                Ok(None) => {
                    self.shared
                        .counters
                        .record_wait_finished(blocked_since.elapsed());
                    return Ok(());
                }
                Ok(Some(v)) => value = v,
                Err(e) => {
                    self.shared
                        .counters
                        .record_wait_finished(blocked_since.elapsed());
                    return Err(e);
                }
            }
            if woken {
                self.shared.counters.record_spurious_wakeup();
            }
            ws.wait(seen);
            woken = true;
            self.shared.counters.record_wakeup();
        }
    }

    /// One non-blocking send attempt: `Ok(None)` on success, `Ok(Some(v))`
    /// when the queue is full (value handed back), `Err` when the stream
    /// cannot accept the value anymore. Honors pause via `checkpoint`.
    fn try_push(&self, value: T, ctl: &ControlToken) -> Result<Option<T>> {
        ctl.checkpoint()?;
        self.poll_send(value, ctl)
    }

    /// The task-poll counterpart of `try_push`: never blocks, not even on
    /// pause (the pollable caller observes pause through
    /// [`ControlToken::poll_checkpoint`] before calling). Same contract
    /// otherwise: `Ok(None)` sent, `Ok(Some(v))` full, `Err` dead stream.
    pub(crate) fn poll_send(&self, value: T, ctl: &ControlToken) -> Result<Option<T>> {
        if ctl.is_stopped() {
            return Err(CoreError::Stopped);
        }
        let mut st = lock_unpoisoned(&self.shared.state);
        if !st.receiver_alive {
            // A stopped consumer drops its receiver; report the stop rather
            // than a broken channel in that case.
            return if ctl.is_stopped() {
                Err(CoreError::Stopped)
            } else {
                Err(CoreError::ChannelClosed)
            };
        }
        if st.queue.len() >= self.shared.capacity {
            return Ok(Some(value));
        }
        let was_empty = st.queue.is_empty();
        st.queue.push_back(value);
        drop(st);
        if was_empty {
            // The receiver only blocks on an empty queue.
            self.shared.watchers.wake_all();
        }
        Ok(None)
    }

    /// Registers an owned wake target (a runtime task waker) for wakeups
    /// on every queue transition or peer exit. Idempotent; pollable
    /// producers call it at the top of every poll slice.
    pub(crate) fn subscribe_target(&self, target: &Arc<dyn WakeTarget>) {
        self.shared.watchers.subscribe_target(target);
    }

    /// Test-only: blocks until `target` blocking waits (either endpoint)
    /// have been entered on this channel. See
    /// [`crate::metrics::WaitCounters::wait_for_waits`].
    #[cfg(test)]
    pub(crate) fn wait_for_waits(&self, target: u64, timeout: std::time::Duration) -> bool {
        self.shared.counters.wait_for_waits(target, timeout)
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender")
            .field("queued", &lock_unpoisoned(&self.shared.state).queue.len())
            .finish()
    }
}

/// Consumer endpoint. Deliberately not [`Clone`]: the synchronous pipeline
/// is a strict one-consumer relationship.
pub(crate) struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = lock_unpoisoned(&self.shared.state);
        st.receiver_alive = false;
        drop(st);
        // Backpressured senders must learn the consumer is gone.
        self.shared.watchers.wake_all();
    }
}

impl<T> Receiver<T> {
    /// Messages currently queued (diagnostic).
    pub(crate) fn len(&self) -> usize {
        lock_unpoisoned(&self.shared.state).queue.len()
    }

    /// Receives the next message, blocking while the queue is empty or the
    /// automaton is paused, waking immediately on publication, producer
    /// exit, or stop.
    ///
    /// Like crossbeam, a closed channel still drains: queued messages are
    /// delivered before [`CoreError::ChannelClosed`].
    ///
    /// # Errors
    ///
    /// - [`CoreError::Stopped`] if the automaton is stopped (checked before
    ///   the queue, so a stop is honored promptly even with a full queue).
    /// - [`CoreError::ChannelClosed`] once all senders are gone and the
    ///   queue is drained.
    #[allow(dead_code)] // blocking path exercised only by cfg(test) drivers
    pub(crate) fn recv(&self, ctl: &ControlToken) -> Result<T> {
        // Fast path.
        if let Some(v) = self.try_pop(ctl)? {
            return Ok(v);
        }
        // Slow path: wait for data, the last sender's exit, or a stop.
        let ws = WaitSet::new();
        let _chan_watch = self.shared.watchers.subscribe(&ws);
        let _ctl_watch = ctl.subscribe(&ws);
        self.shared.counters.record_wait_entered();
        let blocked_since = Instant::now();
        let mut woken = false;
        loop {
            let seen = ws.epoch();
            match self.try_pop(ctl) {
                Ok(Some(v)) => {
                    self.shared
                        .counters
                        .record_wait_finished(blocked_since.elapsed());
                    return Ok(v);
                }
                Ok(None) => {}
                Err(e) => {
                    self.shared
                        .counters
                        .record_wait_finished(blocked_since.elapsed());
                    return Err(e);
                }
            }
            if woken {
                self.shared.counters.record_spurious_wakeup();
            }
            ws.wait(seen);
            woken = true;
            self.shared.counters.record_wakeup();
        }
    }

    /// One non-blocking receive attempt: `Ok(Some(v))` on data, `Ok(None)`
    /// when empty but still open, `Err` on stop or a drained closed stream.
    fn try_pop(&self, ctl: &ControlToken) -> Result<Option<T>> {
        ctl.checkpoint()?;
        self.poll_recv(ctl)
    }

    /// The task-poll counterpart of `try_pop`: never blocks, not even on
    /// pause (the pollable caller observes pause through
    /// [`ControlToken::poll_checkpoint`] before calling).
    pub(crate) fn poll_recv(&self, ctl: &ControlToken) -> Result<Option<T>> {
        if ctl.is_stopped() {
            return Err(CoreError::Stopped);
        }
        let mut st = lock_unpoisoned(&self.shared.state);
        if let Some(v) = st.queue.pop_front() {
            let was_full = st.queue.len() + 1 == self.shared.capacity;
            drop(st);
            if was_full {
                // Senders only block on a full queue.
                self.shared.watchers.wake_all();
            }
            return Ok(Some(v));
        }
        if st.senders == 0 {
            return Err(CoreError::ChannelClosed);
        }
        Ok(None)
    }

    /// Registers an owned wake target (a runtime task waker) for wakeups
    /// on every queue transition or peer exit. Idempotent; pollable
    /// consumers call it at the top of every poll slice.
    pub(crate) fn subscribe_target(&self, target: &Arc<dyn WakeTarget>) {
        self.shared.watchers.subscribe_target(target);
    }

    /// Counters for blocking waits on this channel (both endpoints).
    #[cfg(test)]
    pub(crate) fn wait_stats(&self) -> crate::metrics::WaitStats {
        self.shared.counters.snapshot()
    }

    /// Test-only: blocks until `target` blocking waits (either endpoint)
    /// have been entered on this channel. See
    /// [`crate::metrics::WaitCounters::wait_for_waits`].
    #[cfg(test)]
    pub(crate) fn wait_for_waits(&self, target: u64, timeout: std::time::Duration) -> bool {
        self.shared.counters.wait_for_waits(target, timeout)
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver")
            .field("queued", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = bounded::<u32>(4);
        let ctl = ControlToken::new();
        for i in 0..4 {
            tx.send(i, &ctl).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.recv(&ctl).unwrap(), i);
        }
    }

    #[test]
    fn full_queue_blocks_until_recv() {
        let (tx, rx) = bounded::<u32>(1);
        let ctl = ControlToken::new();
        tx.send(0, &ctl).unwrap();
        let ctl2 = ctl.clone();
        let h = thread::spawn(move || tx.send(1, &ctl2));
        // Event-driven: block until the sender has entered its wait, then
        // make room. No sleep quantum, no timing assumption.
        assert!(
            rx.wait_for_waits(1, Duration::from_secs(10)),
            "sender never blocked"
        );
        assert_eq!(rx.recv(&ctl).unwrap(), 0);
        h.join().unwrap().unwrap();
        assert_eq!(rx.recv(&ctl).unwrap(), 1);
        assert!(rx.wait_stats().waits >= 1);
    }

    #[test]
    fn empty_queue_blocks_until_send() {
        let (tx, rx) = bounded::<u32>(4);
        let ctl = ControlToken::new();
        let ctl2 = ctl.clone();
        let h = thread::spawn(move || rx.recv(&ctl2));
        assert!(
            tx.wait_for_waits(1, Duration::from_secs(10)),
            "receiver never blocked"
        );
        tx.send(7, &ctl).unwrap();
        assert_eq!(h.join().unwrap().unwrap(), 7);
    }

    #[test]
    fn stop_interrupts_blocked_send_promptly() {
        let (tx, rx) = bounded::<u32>(1);
        let ctl = ControlToken::new();
        tx.send(0, &ctl).unwrap();
        let ctl2 = ctl.clone();
        let h = thread::spawn(move || {
            let start = Instant::now();
            (tx.send(1, &ctl2), start.elapsed())
        });
        assert!(
            rx.wait_for_waits(1, Duration::from_secs(10)),
            "sender never blocked"
        );
        ctl.stop();
        let (result, waited) = h.join().unwrap();
        assert!(matches!(result, Err(CoreError::Stopped)));
        assert!(waited < Duration::from_secs(5), "stop took {waited:?}");
    }

    #[test]
    fn stop_interrupts_blocked_recv_promptly() {
        let (tx, rx) = bounded::<u32>(1);
        let ctl = ControlToken::new();
        let ctl2 = ctl.clone();
        let h = thread::spawn(move || rx.recv(&ctl2));
        assert!(
            tx.wait_for_waits(1, Duration::from_secs(10)),
            "receiver never blocked"
        );
        ctl.stop();
        assert!(matches!(h.join().unwrap(), Err(CoreError::Stopped)));
    }

    #[test]
    fn closed_channel_drains_then_errors() {
        let (tx, rx) = bounded::<u32>(4);
        let ctl = ControlToken::new();
        tx.send(1, &ctl).unwrap();
        tx.send(2, &ctl).unwrap();
        drop(tx);
        assert_eq!(rx.recv(&ctl).unwrap(), 1);
        assert_eq!(rx.recv(&ctl).unwrap(), 2);
        assert!(matches!(rx.recv(&ctl), Err(CoreError::ChannelClosed)));
    }

    #[test]
    fn dropped_receiver_fails_send() {
        let (tx, rx) = bounded::<u32>(1);
        let ctl = ControlToken::new();
        drop(rx);
        assert!(matches!(tx.send(0, &ctl), Err(CoreError::ChannelClosed)));
    }

    #[test]
    fn dropped_receiver_after_stop_reports_stop() {
        let (tx, rx) = bounded::<u32>(1);
        let ctl = ControlToken::new();
        ctl.stop();
        drop(rx);
        assert!(matches!(tx.send(0, &ctl), Err(CoreError::Stopped)));
    }

    #[test]
    fn dropped_receiver_unblocks_backpressured_sender() {
        let (tx, rx) = bounded::<u32>(1);
        let ctl = ControlToken::new();
        tx.send(0, &ctl).unwrap();
        let ctl2 = ctl.clone();
        let h = thread::spawn(move || tx.send(1, &ctl2));
        assert!(
            rx.wait_for_waits(1, Duration::from_secs(10)),
            "sender never blocked"
        );
        drop(rx);
        assert!(matches!(h.join().unwrap(), Err(CoreError::ChannelClosed)));
    }

    #[test]
    fn cloned_senders_all_feed_one_receiver() {
        let (tx, rx) = bounded::<u32>(8);
        let ctl = ControlToken::new();
        let mut handles = Vec::new();
        for w in 0..4u32 {
            let tx = tx.clone();
            let ctl = ctl.clone();
            handles.push(thread::spawn(move || {
                for i in 0..25 {
                    tx.send(w * 100 + i, &ctl).unwrap();
                }
            }));
        }
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv(&ctl) {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        let expected: Vec<u32> = (0..4u32)
            .flat_map(|w| (0..25).map(move |i| w * 100 + i))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn pause_blocks_producer_until_resume() {
        let (tx, rx) = bounded::<u32>(4);
        let ctl = ControlToken::new();
        ctl.pause();
        let ctl2 = ctl.clone();
        let h = thread::spawn(move || tx.send(1, &ctl2));
        // A paused sender blocks inside the control token's checkpoint
        // (before ever touching the queue), so the entry signal comes from
        // the token's pause-wait counters, not the channel's.
        assert!(
            ctl.wait_for_checkpoint_waits(1, Duration::from_secs(10)),
            "sender never hit the pause checkpoint"
        );
        assert_eq!(rx.len(), 0, "send went through while paused");
        ctl.resume();
        h.join().unwrap().unwrap();
        assert_eq!(rx.recv(&ctl).unwrap(), 1);
    }
}
