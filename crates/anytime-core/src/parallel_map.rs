//! Multi-threaded sampling within a single anytime stage (paper §IV-C1).
//!
//! "Though we use non-sequential permutations when sampling, sampling can
//! still be performed by multiple threads … it is then straightforward to
//! divide this permutation sequence among threads." This module implements
//! that: a [`ParallelSampledMap`] divides a bijective sample order
//! *cyclically* among worker threads (the paper's recommendation for the
//! tree permutation, so low-resolution completeness arrives as early as
//! possible), collects their computed elements through a channel, and
//! applies them to the working output in the stage driver — preserving the
//! single-writer output-buffer discipline (Property 2).
//!
//! Workers receive only the shared input `Arc` and their index share;
//! element computations must be pure (Property 1), which the
//! `Fn(&I, usize) -> V` bound encourages.

use crate::buffer::{BufferReader, BufferWriter, DoubleBuffer};
use crate::channel::{bounded, Receiver};
use crate::control::{ControlPoll, ControlToken};
use crate::error::{CoreError, Result};
use crate::pipeline::PipelineBuilder;
use crate::stage::{PollCx, StageEnd, StageOptions, StagePoll, StageRunner};
use crate::supervisor::Supervision;
use anytime_permute::{partition, DynPermutation, Permutation};
use std::sync::Arc;

/// Boxed initial-output constructor.
type InitFn<I, O> = Box<dyn FnMut(&I) -> O + Send>;
/// Shared pure element computation (runs on workers).
type ComputeFn<I, V> = Arc<dyn Fn(&I, usize) -> V + Send + Sync>;
/// Boxed element writer (runs on the stage driver).
type WriteFn<O, V> = Box<dyn FnMut(&mut O, usize, V) + Send>;

/// A source stage whose sampling work is spread over worker threads.
///
/// Like [`crate::SampledMap`], but element values are computed by
/// `workers` threads walking cyclic shares of the permutation; the stage
/// driver merges batches in sample order and publishes every
/// `publish_every` *elements*. Because the merge is in arrival order
/// across workers, intermediate outputs are unordered *unions* of the
/// workers' prefixes — each still a valid sample of roughly balanced
/// resolution, exactly the behaviour the paper describes for cyclic
/// distribution.
pub struct ParallelSampledMap<I, O, V> {
    name: String,
    input: Arc<I>,
    perm: DynPermutation,
    workers: usize,
    batch: usize,
    init: InitFn<I, O>,
    compute: ComputeFn<I, V>,
    write: WriteFn<O, V>,
}

impl<I, O, V> std::fmt::Debug for ParallelSampledMap<I, O, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelSampledMap")
            .field("name", &self.name)
            .field("workers", &self.workers)
            .field("batch", &self.batch)
            .finish_non_exhaustive()
    }
}

impl<I, O, V> ParallelSampledMap<I, O, V>
where
    I: Send + Sync + 'static,
    O: Clone + Send + Sync + 'static,
    V: Send + 'static,
{
    /// Creates a parallel sampled source stage.
    ///
    /// - `compute(input, idx)` produces output element `idx` (runs on
    ///   worker threads; must be pure);
    /// - `write(out, idx, value)` stores it in the working output (runs on
    ///   the stage driver);
    /// - `batch` is the number of elements a worker computes between
    ///   channel sends.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `batch == 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        input: I,
        perm: impl Into<DynPermutation>,
        workers: usize,
        batch: usize,
        init: impl FnMut(&I) -> O + Send + 'static,
        compute: impl Fn(&I, usize) -> V + Send + Sync + 'static,
        write: impl FnMut(&mut O, usize, V) + Send + 'static,
    ) -> Self {
        assert!(workers > 0, "at least one worker required");
        assert!(batch > 0, "batch must be non-zero");
        Self {
            name: name.into(),
            input: Arc::new(input),
            perm: perm.into(),
            workers,
            batch,
            init: Box::new(init),
            compute: Arc::new(compute),
            write: Box::new(write),
        }
    }

    /// Registers this stage on a pipeline builder, returning its output
    /// reader.
    pub fn register(self, pb: &mut PipelineBuilder, opts: StageOptions) -> BufferReader<O> {
        let (writer, reader) = crate::buffer::versioned_with(
            &self.name,
            crate::buffer::BufferOptions {
                keep_history: opts.keep_history,
            },
        );
        pb.push_runner(Box::new(ParallelRunner {
            stage: self,
            writer,
            publish_every: opts.publish_every,
            supervision: opts.supervision,
            merged: 0,
            run: None,
            dirty: false,
            #[cfg(feature = "fault-inject")]
            faults: None,
        }));
        reader
    }
}

/// In-flight state of one parallel-map run: the working output, the
/// merge channel, and the live worker threads. Lives across poll slices.
struct PmapRun<O, V> {
    out: O,
    rx: Receiver<Vec<(usize, V)>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    done: u64,
    published_at: u64,
    /// Publications recycle the two-versions-old allocation instead of
    /// cloning the merged output fresh each time.
    db: DoubleBuffer<O>,
}

struct ParallelRunner<I, O, V> {
    stage: ParallelSampledMap<I, O, V>,
    writer: BufferWriter<O>,
    publish_every: u64,
    supervision: Supervision,
    /// Elements merged in the current run, for `steps_completed`.
    merged: u64,
    /// The in-flight run; `None` until the first poll slice (or after a
    /// panic abandoned the previous run).
    run: Option<PmapRun<O, V>>,
    /// Set while a poll slice runs; still set on entry means the previous
    /// slice panicked mid-merge and the run must be abandoned.
    dirty: bool,
    #[cfg(feature = "fault-inject")]
    faults: Option<crate::faultinject::ArmedFaults>,
}

impl<I, O, V> ParallelRunner<I, O, V>
where
    I: Send + Sync + 'static,
    O: Clone + Send + Sync + 'static,
    V: Send + 'static,
{
    #[allow(clippy::type_complexity)]
    fn spawn_workers(
        &self,
        ctl: &ControlToken,
    ) -> Result<(Receiver<Vec<(usize, V)>>, Vec<std::thread::JoinHandle<()>>)> {
        let shares = partition::split_cyclic(&self.stage.perm, self.stage.workers);
        let (tx, rx) = bounded::<Vec<(usize, V)>>(self.stage.workers * 2);
        let mut handles = Vec::with_capacity(self.stage.workers);
        for (w, share) in shares.into_iter().enumerate() {
            let tx = tx.clone();
            let input = Arc::clone(&self.stage.input);
            let compute = Arc::clone(&self.stage.compute);
            let batch = self.stage.batch;
            let ctl = ctl.clone();
            let handle = std::thread::Builder::new()
                .name(format!("anytime-{}-w{w}", self.stage.name))
                // lint: allow(l6-no-raw-spawn) -- compute workers run pure element kernels at full tilt and block on channel backpressure; they are the paper's intra-stage parallelism, not stages
                .spawn(move || {
                    let mut buf = Vec::with_capacity(batch);
                    for idx in share {
                        if ctl.is_stopped() {
                            return;
                        }
                        buf.push((idx, compute(&input, idx)));
                        if buf.len() == batch {
                            let full = std::mem::replace(&mut buf, Vec::with_capacity(batch));
                            // A send error means the automaton stopped or
                            // the driver exited; either way we are done.
                            if tx.send(full, &ctl).is_err() {
                                return;
                            }
                        }
                    }
                    if !buf.is_empty() {
                        let _ = tx.send(buf, &ctl);
                    }
                })
                .map_err(|e| CoreError::InvalidConfig(format!("failed to spawn worker: {e}")))?;
            handles.push(handle);
        }
        // Drop the original sender so the channel closes when workers end.
        drop(tx);
        Ok((rx, handles))
    }
}

impl<I, O, V> StageRunner for ParallelRunner<I, O, V>
where
    I: Send + Sync + 'static,
    O: Clone + Send + Sync + 'static,
    V: Send + 'static,
{
    fn name(&self) -> &str {
        &self.stage.name
    }

    fn poll(&mut self, cx: &mut PollCx<'_>) -> StagePoll {
        if self.writer.is_final() {
            return StagePoll::Ready(Ok(StageEnd::Final));
        }
        if self.writer.is_terminal() {
            return StagePoll::Ready(Ok(StageEnd::Degraded));
        }
        // Dirty on entry: the previous slice panicked mid-merge (in `write`
        // or a fault hook). Abandon the run — dropping the receiver closes
        // the channel and unblocks any backpressured workers; the fresh run
        // recomputes from scratch because the channel cannot rewind.
        if std::mem::replace(&mut self.dirty, true) {
            self.run = None;
        }
        cx.ctl.subscribe_target(cx.wake);
        let total = self.stage.perm.len() as u64;
        if self.run.is_none() {
            let input = Arc::clone(&self.stage.input);
            let out = (self.stage.init)(&input);
            let (rx, handles) = match self.spawn_workers(cx.ctl) {
                Ok(pair) => pair,
                Err(e) => {
                    self.dirty = false;
                    return StagePoll::Ready(Err(e));
                }
            };
            self.merged = 0;
            // A crash-restarted run recounts merged elements from zero, so
            // the Property 2 steps floor restarts with it.
            self.writer.begin_run(0);
            self.run = Some(PmapRun {
                out,
                rx,
                handles,
                done: 0,
                published_at: 0,
                db: DoubleBuffer::new(),
            });
        }
        let run = self.run.as_mut().expect("run initialised above");
        run.rx.subscribe_target(cx.wake);
        let publish_every = self.publish_every.max(1);
        let mut pubs: u64 = 0;
        let end = loop {
            match cx.ctl.poll_checkpoint() {
                ControlPoll::Running => {}
                ControlPoll::Paused => {
                    self.dirty = false;
                    return StagePoll::Pending;
                }
                ControlPoll::Stopped => break StageEnd::Stopped,
            }
            match run.rx.poll_recv(cx.ctl) {
                Ok(Some(batch)) => {
                    // Injected faults fire at batch-merge boundaries — the
                    // driver's step boundary, where the working output is a
                    // complete, valid partial sample.
                    #[cfg(feature = "fault-inject")]
                    if let Some(armed) = self.faults.as_mut() {
                        armed.before_step(&self.stage.name, run.done);
                    }
                    for (idx, value) in batch {
                        (self.stage.write)(&mut run.out, idx, value);
                        run.done += 1;
                    }
                    self.merged = run.done;
                    if run.done == total {
                        run.db
                            .publish_final_from(&mut self.writer, &run.out, run.done);
                        break StageEnd::Final;
                    }
                    if run.done - run.published_at >= publish_every {
                        run.db.publish_from(&mut self.writer, &run.out, run.done);
                        run.published_at = run.done;
                        pubs += 1;
                        if pubs >= cx.budget {
                            self.dirty = false;
                            return StagePoll::Yielded;
                        }
                    }
                }
                Ok(None) => {
                    self.dirty = false;
                    return StagePoll::Pending;
                }
                Err(CoreError::Stopped) => break StageEnd::Stopped,
                Err(CoreError::ChannelClosed) => {
                    // All workers exited and the queue is drained.
                    if run.done == total {
                        run.db
                            .publish_final_from(&mut self.writer, &run.out, run.done);
                        break StageEnd::Final;
                    }
                    // Workers died early without a stop: a worker panic.
                    break StageEnd::Stopped;
                }
                Err(e) => {
                    self.dirty = false;
                    return StagePoll::Ready(Err(e));
                }
            }
        };
        let mut run = self.run.take().expect("run present at terminal");
        // Publish whatever progress was merged before an interruption.
        if end == StageEnd::Stopped && run.done > run.published_at && !self.writer.is_final() {
            run.db.publish_from(&mut self.writer, &run.out, run.done);
        }
        let handles = std::mem::take(&mut run.handles);
        // Dropping the run closes the receiver, unblocking any workers
        // stalled on channel backpressure before we join them.
        drop(run);
        for h in handles {
            // lint: allow(l10-blocking-in-task) -- terminal-state join: the run (and its receiver) is already dropped, so every worker exits at its next send or stop check; the join is bounded by one chunk of work
            let _ = h.join();
        }
        self.dirty = false;
        if end == StageEnd::Stopped && !cx.ctl.is_stopped() && self.merged != total {
            return StagePoll::Ready(Err(CoreError::StagePanicked {
                stage: self.stage.name.clone(),
                message: Some("worker thread exited early".into()),
                steps_at_death: self.merged,
            }));
        }
        StagePoll::Ready(Ok(end))
    }

    fn output_control(&self) -> Option<Arc<dyn crate::buffer::BufferControl>> {
        Some(self.writer.control_handle())
    }

    fn supervision(&self) -> Supervision {
        self.supervision
    }

    fn steps_completed(&self) -> u64 {
        self.merged
    }

    #[cfg(feature = "fault-inject")]
    fn inject_faults(&mut self, faults: crate::faultinject::StageFaults) {
        self.faults = Some(crate::faultinject::ArmedFaults::new(faults));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineBuilder;
    use anytime_permute::{Lfsr, Tree2d};
    use std::time::Duration;

    fn build(workers: usize, publish_every: u64) -> (crate::Pipeline, BufferReader<Vec<u64>>) {
        let n = 1024usize;
        let input: Vec<u64> = (0..n as u64).collect();
        let mut pb = PipelineBuilder::new();
        let stage = ParallelSampledMap::new(
            "pmap",
            input,
            DynPermutation::new(Lfsr::with_len(n).unwrap()),
            workers,
            16,
            |i: &Vec<u64>| vec![u64::MAX; i.len()],
            |i: &Vec<u64>, idx| i[idx] * 3,
            |out: &mut Vec<u64>, idx, v| out[idx] = v,
        );
        let reader = stage.register(&mut pb, StageOptions::with_publish_every(publish_every));
        (pb.build(), reader)
    }

    #[test]
    fn parallel_map_reaches_precise_output() {
        for workers in [1usize, 2, 4] {
            let (pipeline, out) = build(workers, 64);
            let auto = pipeline.launch().unwrap();
            let snap = out.wait_final_timeout(Duration::from_secs(60)).unwrap();
            let expected: Vec<u64> = (0..1024u64).map(|v| v * 3).collect();
            assert_eq!(snap.value(), &expected, "workers={workers}");
            assert_eq!(snap.steps(), 1024);
            auto.join().unwrap();
        }
    }

    #[test]
    fn intermediate_outputs_are_valid_partial_samples() {
        let (pipeline, out) = build(3, 32);
        let auto = pipeline.launch().unwrap();
        let first = out
            .wait_newer_timeout(None, Duration::from_secs(60))
            .unwrap();
        // Every filled element must already hold its precise value.
        for (idx, &v) in first.value().iter().enumerate() {
            if v != u64::MAX {
                assert_eq!(v, idx as u64 * 3);
            }
        }
        assert!(first.steps() >= 32);
        auto.join().unwrap();
    }

    #[test]
    fn stop_interrupts_workers() {
        let n = 1 << 16;
        let input: Vec<u64> = (0..n as u64).collect();
        let mut pb = PipelineBuilder::new();
        let stage = ParallelSampledMap::new(
            "slow",
            input,
            DynPermutation::new(Tree2d::new(256, 256).unwrap()),
            2,
            8,
            |i: &Vec<u64>| vec![0u64; i.len()],
            |i: &Vec<u64>, idx| {
                std::thread::sleep(Duration::from_micros(20));
                i[idx] + 1
            },
            |out: &mut Vec<u64>, idx, v| out[idx] = v,
        );
        let reader = stage.register(&mut pb, StageOptions::with_publish_every(64));
        let auto = pb.build().launch().unwrap();
        std::thread::sleep(Duration::from_millis(40));
        let report = auto.stop_and_join().unwrap();
        assert_eq!(report.stages[0].end, StageEnd::Stopped);
        // Partial progress was published on stop.
        let snap = reader.latest().expect("progress published");
        assert!(snap.steps() > 0);
        assert!(!snap.is_final());
    }

    #[test]
    fn worker_panic_is_reported() {
        let input: Vec<u64> = (0..64).collect();
        let mut pb = PipelineBuilder::new();
        let stage = ParallelSampledMap::new(
            "bad",
            input,
            DynPermutation::new(Lfsr::with_len(64).unwrap()),
            2,
            4,
            |i: &Vec<u64>| vec![0u64; i.len()],
            |_: &Vec<u64>, idx| {
                assert!(idx != 13, "worker exploded");
                idx as u64
            },
            |out: &mut Vec<u64>, idx, v| out[idx] = v,
        );
        let _reader = stage.register(&mut pb, StageOptions::default());
        let err = pb.build().launch().unwrap().join().unwrap_err();
        assert!(matches!(err, CoreError::StagePanicked { .. }), "{err}");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = ParallelSampledMap::new(
            "x",
            vec![0u64],
            DynPermutation::new(Lfsr::with_len(1).unwrap()),
            0,
            1,
            |i: &Vec<u64>| i.clone(),
            |_: &Vec<u64>, _| 0u64,
            |_: &mut Vec<u64>, _, _| {},
        );
    }
}
