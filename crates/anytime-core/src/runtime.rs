//! Work-stealing task runtime: stages as schedulable tasks on a fixed
//! worker pool.
//!
//! The executor used to pin one OS thread per stage, so a [`crate::serve`]
//! pool of N replicas × S stages burned N×S threads. This module replaces
//! that with a **fixed-size worker pool** the whole process can share:
//!
//! - every stage becomes a resumable *task* ([`RtTask`]) that runs a
//!   bounded slice of work per poll and **yields at publish points**
//!   instead of owning a thread;
//! - each worker owns a FIFO deque; externally woken tasks land in a
//!   global **injector**, and idle workers **steal** from their peers'
//!   deques before parking;
//! - parked workers are woken through the same [`WaitSet`] epoch protocol
//!   every other blocking wait in the crate uses, so wakeups between the
//!   queue check and the park are never lost;
//! - readiness is event-driven: a task waiting for input subscribes its
//!   [`TaskWaker`] to the upstream buffer's / channel's / control token's
//!   [`crate::notify::Watchers`] registry, and the next publication marks
//!   it runnable. No polling loops, no timers except explicit restart
//!   backoff.
//!
//! The waker state machine makes lost wakeups impossible without locking
//! around `poll`:
//!
//! ```text
//!            wake()                   worker picks up
//!   IDLE ───────────────▶ QUEUED ───────────────────▶ POLLING
//!    ▲                                                 │    │
//!    │  poll → Pending, no wake arrived                │    │ wake() during poll
//!    └─────────────────────────────────────────────────┘    ▼
//!                 poll → Pending but NOTIFIED ──▶ re-QUEUED (re-poll)
//! ```
//!
//! A wake that arrives while the task is `POLLING` flips it to `NOTIFIED`;
//! the worker observes that when the poll returns `Pending` and requeues
//! instead of idling the task. Because tasks re-check their predicates
//! from scratch at every poll, a wake delivered at *any* point is at worst
//! one spurious re-poll, never a hang.
//!
//! Mechanism vs. policy: this module schedules anonymous tasks; all stage
//! semantics — supervision, restart backoff (via [`TaskPoll::PendingUntil`]
//! timers), fault accounting, trace events — live in the executor's task
//! wrapper. [`scheduler::allocate`](crate::scheduler::allocate) thread
//! plans map onto per-task *credits* (publish slices per poll) via
//! [`crate::scheduler::credits_from_alloc`].

use crate::notify::{lock_unpoisoned, WaitSet, WakeTarget};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::thread;
use std::time::{Duration, Instant};

/// What a task reports back to its worker after a poll slice.
pub(crate) enum TaskPoll {
    /// The task is finished; the runtime drops it. Results travel through
    /// the task's own side channel (the executor wrapper fills its result
    /// slot *before* returning `Ready`).
    Ready,
    /// The task hit its publish/credit boundary but has more work now:
    /// requeue it at the back of the worker's deque (round-robin with its
    /// peers) rather than waiting for a wake.
    Yielded,
    /// The task is blocked on an event source it has subscribed its waker
    /// to; leave it idle until the waker fires.
    Pending,
    /// Like `Pending`, but also arm a timer: wake the task at `Instant`
    /// even if no event fires first. Used for restart backoff.
    PendingUntil(Instant),
}

/// A resumable unit of stage work scheduled by the runtime.
///
/// `poll` must be non-blocking: run at most a bounded slice (e.g. up to
/// `credits` publish intervals), subscribe `wake` to every event source
/// the task may wait on, and return. Subscription-before-predicate-check
/// ordering is the caller's responsibility; [`crate::notify::Watchers::subscribe_target`]
/// is idempotent, so subscribing at the top of every poll is the easy way
/// to be correct.
pub(crate) trait RtTask: Send {
    /// Stage name, for worker thread diagnostics.
    fn name(&self) -> &str;
    /// Run one slice of work.
    fn poll(&mut self, wake: &Arc<dyn WakeTarget>, credits: u64) -> TaskPoll;
}

const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const POLLING: u8 = 2;
const NOTIFIED: u8 = 3;
const DONE: u8 = 4;

/// Per-task wake handle: flips the scheduling state machine and hands the
/// task id to the injector when a parked task becomes runnable.
pub(crate) struct TaskWaker {
    state: AtomicU8,
    id: usize,
    rt: Weak<RtShared>,
}

impl TaskWaker {
    fn wake(&self) {
        loop {
            match self.state.load(Ordering::Acquire) {
                IDLE => {
                    if self
                        .state
                        .compare_exchange(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        if let Some(rt) = self.rt.upgrade() {
                            rt.counters.wakes.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics
                            rt.inject(self.id);
                        }
                        return;
                    }
                }
                POLLING => {
                    if self
                        .state
                        .compare_exchange(POLLING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return;
                    }
                }
                // QUEUED / NOTIFIED / DONE: the wake is already covered —
                // the task will (re-)poll and re-check its predicates.
                _ => return,
            }
        }
    }
}

impl WakeTarget for TaskWaker {
    fn on_wake(&self) {
        self.wake();
    }
}

struct TaskEntry {
    /// Taken (left `None`) while a worker is polling the task, so the
    /// table lock is never held across a poll.
    task: Option<Box<dyn RtTask>>,
    waker: Arc<TaskWaker>,
    /// The waker coerced once, handed to every poll for subscriptions.
    wake_target: Arc<dyn WakeTarget>,
    /// Publish slices the task may run per poll (scheduler credits).
    credits: u64,
}

#[derive(Default)]
struct TaskTable {
    slots: Vec<Option<TaskEntry>>,
    free: Vec<usize>,
}

impl TaskTable {
    /// Reserves an empty slot; the caller fills it before unlocking.
    fn reserve(&mut self) -> usize {
        match self.free.pop() {
            Some(id) => id,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        }
    }

    fn remove(&mut self, id: usize) -> Option<TaskEntry> {
        let entry = self.slots.get_mut(id)?.take();
        if entry.is_some() {
            self.free.push(id);
        }
        entry
    }
}

#[derive(Default)]
struct RtCounters {
    spawned: AtomicU64,
    polls: AtomicU64,
    yields: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
    wakes: AtomicU64,
    timer_fires: AtomicU64,
}

struct RtShared {
    workers: usize,
    /// Externally woken / freshly spawned tasks.
    injector: Mutex<VecDeque<usize>>,
    /// One FIFO deque per worker; owners pop the front, thieves the back.
    deques: Vec<Mutex<VecDeque<usize>>>,
    tasks: Mutex<TaskTable>,
    /// Armed restart-backoff timers. Small (one per backing-off stage), so
    /// a scanned `Vec` beats a heap in both code and contention.
    timers: Mutex<Vec<(Instant, Arc<TaskWaker>)>>,
    /// Shared park signal: workers sleep on the epoch protocol here.
    park: WaitSet,
    parked: AtomicUsize,
    shutdown: AtomicBool,
    /// Tasks spawned and not yet finished.
    live: AtomicUsize,
    counters: RtCounters,
    steal_rr: AtomicUsize,
}

impl RtShared {
    fn inject(&self, id: usize) {
        lock_unpoisoned(&self.injector).push_back(id);
        self.park.wake();
    }

    fn push_local(&self, worker: usize, id: usize) {
        let backlog = {
            let mut deque = lock_unpoisoned(&self.deques[worker]);
            deque.push_back(id);
            deque.len() > 1
        };
        // Only the owning worker pushes here (yield / pending-wake
        // requeues), and it re-checks its deque before parking, so a
        // single requeued task needs no wake — waking a parked peer
        // would just have it steal the task this worker is about to
        // pop, ping-ponging it across workers. A peer only helps once
        // a backlog builds behind the task being requeued.
        // relaxed: advisory gauge; a stale read skips a wake the parked worker's re-park deadline covers
        if backlog && self.parked.load(Ordering::Relaxed) > 0 {
            self.park.wake();
        }
    }

    /// Next runnable task for `worker`: own deque, then injector, then
    /// steal from a peer (round-robin start so thieves spread out).
    fn next_task(&self, worker: usize) -> Option<usize> {
        if let Some(id) = lock_unpoisoned(&self.deques[worker]).pop_front() {
            return Some(id);
        }
        if let Some(id) = lock_unpoisoned(&self.injector).pop_front() {
            return Some(id);
        }
        let n = self.deques.len();
        let start = self.steal_rr.fetch_add(1, Ordering::Relaxed) % n; // relaxed: rotation hint only
        for off in 0..n {
            let victim = (start + off) % n;
            if victim == worker {
                continue;
            }
            if let Some(id) = lock_unpoisoned(&self.deques[victim]).pop_back() {
                self.counters.steals.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics
                return Some(id);
            }
        }
        None
    }

    /// Fires due timers; returns the next pending deadline, if any.
    fn fire_timers(&self) -> Option<Instant> {
        let now = Instant::now();
        let mut due = Vec::new();
        let mut next = None;
        {
            let mut timers = lock_unpoisoned(&self.timers);
            timers.retain(|(at, waker)| {
                if *at <= now {
                    due.push(waker.clone());
                    false
                } else {
                    next = Some(next.map_or(*at, |n: Instant| n.min(*at)));
                    true
                }
            });
        }
        for waker in due {
            self.counters.timer_fires.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics
            waker.wake();
        }
        next
    }

    fn arm_timer(&self, at: Instant, waker: Arc<TaskWaker>) {
        lock_unpoisoned(&self.timers).push((at, waker));
        // A worker may be parked past this deadline; re-park with it.
        self.park.wake();
    }

    fn should_exit(&self) -> bool {
        self.shutdown.load(Ordering::Acquire) && self.live.load(Ordering::Acquire) == 0
    }

    fn run_task(self: &Arc<Self>, worker: usize, id: usize) {
        let (mut task, waker, wake_target, credits) = {
            let mut table = lock_unpoisoned(&self.tasks);
            let Some(entry) = table.slots.get_mut(id).and_then(|s| s.as_mut()) else {
                return;
            };
            let Some(task) = entry.task.take() else {
                return;
            };
            (
                task,
                entry.waker.clone(),
                entry.wake_target.clone(),
                entry.credits,
            )
        };
        waker.state.store(POLLING, Ordering::Release);
        self.counters.polls.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics
        // The executor's task wrapper fences stage panics itself; this
        // outer fence only keeps a worker alive if bookkeeping code in a
        // wrapper panics (a bug, but one that must not drain the pool).
        let poll = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            task.poll(&wake_target, credits)
        }));
        match poll {
            Ok(TaskPoll::Ready) | Err(_) => {
                waker.state.store(DONE, Ordering::Release);
                let entry = lock_unpoisoned(&self.tasks).remove(id);
                drop(entry);
                drop(task);
                if self.live.fetch_sub(1, Ordering::AcqRel) == 1 {
                    // Last task out: let shutting-down workers exit.
                    self.park.wake();
                }
            }
            Ok(TaskPoll::Yielded) => {
                self.counters.yields.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics
                self.put_back(id, task);
                waker.state.store(QUEUED, Ordering::Release);
                self.push_local(worker, id);
            }
            Ok(TaskPoll::Pending) => {
                self.put_back(id, task);
                self.settle_pending(worker, id, &waker);
            }
            Ok(TaskPoll::PendingUntil(at)) => {
                self.put_back(id, task);
                self.arm_timer(at, waker.clone());
                self.settle_pending(worker, id, &waker);
            }
        }
    }

    fn put_back(&self, id: usize, task: Box<dyn RtTask>) {
        let mut table = lock_unpoisoned(&self.tasks);
        if let Some(entry) = table.slots.get_mut(id).and_then(|s| s.as_mut()) {
            entry.task = Some(task);
        }
    }

    /// After a `Pending` poll: idle the task, unless a wake raced in
    /// during the poll (`NOTIFIED`), in which case requeue immediately.
    fn settle_pending(&self, worker: usize, id: usize, waker: &TaskWaker) {
        if waker
            .state
            .compare_exchange(POLLING, IDLE, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            waker.state.store(QUEUED, Ordering::Release);
            self.push_local(worker, id);
        }
    }
}

fn worker_loop(rt: Arc<RtShared>, index: usize) {
    loop {
        let next_timer = rt.fire_timers();
        if let Some(id) = rt.next_task(index) {
            rt.run_task(index, id);
            continue;
        }
        if rt.should_exit() {
            return;
        }
        // Park on the epoch protocol: read the epoch, re-check for work,
        // then sleep. Any inject/spawn/timer-arm between the epoch read
        // and the wait bumps the epoch first, so the wait returns at once.
        let seen = rt.park.epoch();
        if let Some(id) = rt.next_task(index) {
            rt.run_task(index, id);
            continue;
        }
        if rt.should_exit() {
            return;
        }
        let deadline = next_timer.unwrap_or_else(|| Instant::now() + Duration::from_millis(200));
        rt.parked.fetch_add(1, Ordering::Relaxed); // relaxed: advisory gauge read by push_local
        rt.counters.parks.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics
        rt.park.wait_deadline(seen, deadline);
        rt.parked.fetch_sub(1, Ordering::Relaxed); // relaxed: advisory gauge read by push_local
    }
}

/// A fixed pool of worker threads executing stage tasks.
///
/// Dropping the runtime shuts it down: workers finish every live task,
/// then exit, and `drop` joins them. The process-wide instance from
/// [`RuntimeHandle::global`] is never dropped.
pub struct Runtime {
    inner: Arc<RtShared>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.inner.workers)
            .field("live_tasks", &self.inner.live.load(Ordering::Relaxed)) // relaxed: diagnostics
            .finish_non_exhaustive()
    }
}

impl Runtime {
    /// Spawns a runtime with `workers` worker threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let inner = Arc::new(RtShared {
            workers,
            injector: Mutex::new(VecDeque::new()),
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            tasks: Mutex::new(TaskTable::default()),
            timers: Mutex::new(Vec::new()),
            park: WaitSet::new(),
            parked: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            live: AtomicUsize::new(0),
            counters: RtCounters::default(),
            steal_rr: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let rt = inner.clone();
                thread::Builder::new()
                    .name(format!("anytime-rt-{i}"))
                    // lint: allow(l6-no-raw-spawn) -- this IS the worker pool every stage task runs on
                    .spawn(move || worker_loop(rt, i))
                    .expect("spawn runtime worker")
            })
            .collect();
        Self { inner, handles }
    }

    /// A runtime sized to the hardware: `available_parallelism()`, but at
    /// least 2 workers so a stage blocking inside one long step cannot
    /// starve the rest of a pipeline.
    pub fn with_default_workers() -> Self {
        Self::new(default_worker_count())
    }

    /// A cloneable handle for scheduling pipelines onto this runtime.
    pub fn handle(&self) -> RuntimeHandle {
        RuntimeHandle {
            inner: self.inner.clone(),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Scheduling counters for observability and benchmarks.
    pub fn stats(&self) -> RuntimeStats {
        self.handle().stats()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.park.wake();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn default_worker_count() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .max(2)
}

/// Handle to a [`Runtime`] (or to the shared process-wide one): what a
/// [`crate::PipelineBuilder`] needs to schedule stage tasks.
#[derive(Clone)]
pub struct RuntimeHandle {
    inner: Arc<RtShared>,
}

impl RuntimeHandle {
    /// The process-wide shared runtime, created on first use with
    /// `available_parallelism().max(2)` workers. Every pipeline launched
    /// without an explicit runtime lands here, so a 64-replica serve pool
    /// still runs on O(cores) threads.
    pub fn global() -> RuntimeHandle {
        static GLOBAL: OnceLock<Runtime> = OnceLock::new();
        GLOBAL.get_or_init(Runtime::with_default_workers).handle()
    }

    /// Number of worker threads behind this handle.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Scheduling counters for observability and benchmarks.
    pub fn stats(&self) -> RuntimeStats {
        let c = &self.inner.counters;
        RuntimeStats {
            workers: self.inner.workers,
            tasks_live: self.inner.live.load(Ordering::Acquire),
            tasks_spawned: c.spawned.load(Ordering::Relaxed), // relaxed: diagnostics
            polls: c.polls.load(Ordering::Relaxed),           // relaxed: diagnostics
            yields: c.yields.load(Ordering::Relaxed),         // relaxed: diagnostics
            steals: c.steals.load(Ordering::Relaxed),         // relaxed: diagnostics
            parks: c.parks.load(Ordering::Relaxed),           // relaxed: diagnostics
            wakes: c.wakes.load(Ordering::Relaxed),           // relaxed: diagnostics
            timer_fires: c.timer_fires.load(Ordering::Relaxed), // relaxed: diagnostics
        }
    }

    /// Schedules a task; it is polled as soon as a worker frees up.
    ///
    /// # Panics
    ///
    /// Panics if the runtime has begun shutting down (its owning
    /// [`Runtime`] was dropped) — launching a pipeline onto a dead
    /// runtime is a caller bug, and panicking here turns a silent hang
    /// into an immediate diagnosis.
    pub(crate) fn spawn_task(&self, task: Box<dyn RtTask>, credits: u64) {
        let rt = &self.inner;
        assert!(
            !rt.shutdown.load(Ordering::Acquire),
            "spawn_task on a shut-down runtime (stage `{}`)",
            task.name()
        );
        rt.live.fetch_add(1, Ordering::AcqRel);
        rt.counters.spawned.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics
        let id = {
            let mut table = lock_unpoisoned(&rt.tasks);
            let id = table.reserve();
            let waker = Arc::new(TaskWaker {
                state: AtomicU8::new(QUEUED),
                id,
                rt: Arc::downgrade(rt),
            });
            let wake_target: Arc<dyn WakeTarget> = waker.clone();
            table.slots[id] = Some(TaskEntry {
                task: Some(task),
                waker,
                wake_target,
                credits,
            });
            id
        };
        rt.inject(id);
    }
}

impl std::fmt::Debug for RuntimeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeHandle")
            .field("workers", &self.inner.workers)
            .field("tasks_live", &self.inner.live.load(Ordering::Relaxed)) // relaxed: diagnostics
            .finish()
    }
}

/// Point-in-time scheduling counters of a runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Tasks currently spawned and unfinished.
    pub tasks_live: usize,
    /// Tasks ever spawned.
    pub tasks_spawned: u64,
    /// Task poll slices executed.
    pub polls: u64,
    /// Polls that ended in a cooperative yield (publish-point boundary).
    pub yields: u64,
    /// Tasks a worker stole from a peer's deque.
    pub steals: u64,
    /// Times a worker parked for lack of work.
    pub parks: u64,
    /// Wakeups delivered to idle tasks by event sources.
    pub wakes: u64,
    /// Restart-backoff timers fired.
    pub timer_fires: u64,
}

impl RuntimeStats {
    /// Prometheus exposition rendering (`anytime_runtime_*` series).
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let mut gauge = |name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP anytime_runtime_{name} {help}\n\
                 # TYPE anytime_runtime_{name} counter\n\
                 anytime_runtime_{name} {v}\n"
            ));
        };
        gauge("workers", "Worker threads in the pool.", self.workers as u64);
        gauge(
            "tasks_live",
            "Tasks currently live.",
            self.tasks_live as u64,
        );
        gauge("tasks_spawned_total", "Tasks ever spawned.", self.tasks_spawned);
        gauge("polls_total", "Task poll slices executed.", self.polls);
        gauge("yields_total", "Cooperative publish-point yields.", self.yields);
        gauge("steals_total", "Tasks stolen from peer deques.", self.steals);
        gauge("parks_total", "Worker park events.", self.parks);
        gauge("wakes_total", "Wakeups delivered to idle tasks.", self.wakes);
        gauge("timer_fires_total", "Backoff timers fired.", self.timer_fires);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// A task that counts down, yielding between decrements.
    struct Countdown {
        name: String,
        left: u32,
        done: Arc<AtomicU32>,
    }

    impl RtTask for Countdown {
        fn name(&self) -> &str {
            &self.name
        }
        fn poll(&mut self, _wake: &Arc<dyn WakeTarget>, _credits: u64) -> TaskPoll {
            if self.left == 0 {
                self.done.fetch_add(1, Ordering::SeqCst);
                return TaskPoll::Ready;
            }
            self.left -= 1;
            TaskPoll::Yielded
        }
    }

    fn wait_until(deadline: Duration, mut pred: impl FnMut() -> bool) -> bool {
        let end = Instant::now() + deadline;
        while Instant::now() < end {
            if pred() {
                return true;
            }
            thread::sleep(Duration::from_millis(1));
        }
        pred()
    }

    #[test]
    fn yielded_tasks_run_to_completion() {
        let rt = Runtime::new(2);
        let done = Arc::new(AtomicU32::new(0));
        for i in 0..8 {
            rt.handle().spawn_task(
                Box::new(Countdown {
                    name: format!("t{i}"),
                    left: 50,
                    done: done.clone(),
                }),
                1,
            );
        }
        assert!(wait_until(Duration::from_secs(10), || done
            .load(Ordering::SeqCst)
            == 8));
        let stats = rt.stats();
        assert_eq!(stats.tasks_spawned, 8);
        assert_eq!(stats.tasks_live, 0);
        assert!(stats.yields >= 8 * 50);
    }

    /// A task that goes Pending until an external flag is set, exercising
    /// the waker path from a non-worker thread.
    struct WaitsForFlag {
        flag: Arc<AtomicBool>,
        waker_out: Arc<Mutex<Option<Arc<dyn WakeTarget>>>>,
        done: Arc<AtomicU32>,
    }

    impl RtTask for WaitsForFlag {
        fn name(&self) -> &str {
            "waits-for-flag"
        }
        fn poll(&mut self, wake: &Arc<dyn WakeTarget>, _credits: u64) -> TaskPoll {
            *lock_unpoisoned(&self.waker_out) = Some(wake.clone());
            if self.flag.load(Ordering::SeqCst) {
                self.done.fetch_add(1, Ordering::SeqCst);
                TaskPoll::Ready
            } else {
                TaskPoll::Pending
            }
        }
    }

    #[test]
    fn pending_task_resumes_on_wake() {
        let rt = Runtime::new(1);
        let flag = Arc::new(AtomicBool::new(false));
        let waker_out = Arc::new(Mutex::new(None));
        let done = Arc::new(AtomicU32::new(0));
        rt.handle().spawn_task(
            Box::new(WaitsForFlag {
                flag: flag.clone(),
                waker_out: waker_out.clone(),
                done: done.clone(),
            }),
            1,
        );
        assert!(wait_until(Duration::from_secs(5), || lock_unpoisoned(
            &waker_out
        )
        .is_some()));
        assert_eq!(done.load(Ordering::SeqCst), 0);
        flag.store(true, Ordering::SeqCst);
        let waker = lock_unpoisoned(&waker_out).clone().unwrap();
        waker.on_wake();
        assert!(wait_until(Duration::from_secs(5), || done
            .load(Ordering::SeqCst)
            == 1));
    }

    struct BackoffOnce {
        fired: bool,
        done: Arc<AtomicU32>,
        at: Option<Instant>,
    }

    impl RtTask for BackoffOnce {
        fn name(&self) -> &str {
            "backoff-once"
        }
        fn poll(&mut self, _wake: &Arc<dyn WakeTarget>, _credits: u64) -> TaskPoll {
            if self.fired {
                self.done.fetch_add(1, Ordering::SeqCst);
                return TaskPoll::Ready;
            }
            self.fired = true;
            let at = Instant::now() + Duration::from_millis(30);
            self.at = Some(at);
            TaskPoll::PendingUntil(at)
        }
    }

    #[test]
    fn pending_until_fires_timer() {
        let rt = Runtime::new(1);
        let done = Arc::new(AtomicU32::new(0));
        let start = Instant::now();
        rt.handle().spawn_task(
            Box::new(BackoffOnce {
                fired: false,
                done: done.clone(),
                at: None,
            }),
            1,
        );
        assert!(wait_until(Duration::from_secs(5), || done
            .load(Ordering::SeqCst)
            == 1));
        assert!(
            start.elapsed() >= Duration::from_millis(25),
            "timer fired too early: {:?}",
            start.elapsed()
        );
        assert!(rt.stats().timer_fires >= 1);
    }

    /// Interleaving stress for the deque/injector/waker protocol: many
    /// external threads hammer wakes at tasks that ping-pong through
    /// Pending while workers poll and steal. Every task must see every
    /// increment (no lost wakeups) and finish exactly once.
    #[test]
    fn stress_concurrent_wakes_and_steals() {
        const TASKS: usize = 16;
        const TARGET: u32 = 200;

        struct CountTo {
            n: Arc<AtomicU32>,
            done: Arc<AtomicU32>,
        }
        impl RtTask for CountTo {
            fn name(&self) -> &str {
                "count-to"
            }
            fn poll(&mut self, _wake: &Arc<dyn WakeTarget>, _credits: u64) -> TaskPoll {
                // Predicate re-checked from scratch each poll: the classic
                // "subscribe then check" shape, with subscription standing
                // in for the waker the feeder thread already holds.
                if self.n.load(Ordering::SeqCst) >= TARGET {
                    self.done.fetch_add(1, Ordering::SeqCst);
                    TaskPoll::Ready
                } else {
                    TaskPoll::Pending
                }
            }
        }

        let rt = Runtime::new(3);
        let done = Arc::new(AtomicU32::new(0));
        let waker_slots: Vec<Arc<Mutex<Option<Arc<dyn WakeTarget>>>>> =
            (0..TASKS).map(|_| Arc::new(Mutex::new(None))).collect();
        let counts: Vec<Arc<AtomicU32>> =
            (0..TASKS).map(|_| Arc::new(AtomicU32::new(0))).collect();

        struct Publish {
            inner: CountTo,
            slot: Arc<Mutex<Option<Arc<dyn WakeTarget>>>>,
        }
        impl RtTask for Publish {
            fn name(&self) -> &str {
                "count-to"
            }
            fn poll(&mut self, wake: &Arc<dyn WakeTarget>, credits: u64) -> TaskPoll {
                *lock_unpoisoned(&self.slot) = Some(wake.clone());
                self.inner.poll(wake, credits)
            }
        }

        for i in 0..TASKS {
            rt.handle().spawn_task(
                Box::new(Publish {
                    inner: CountTo {
                        n: counts[i].clone(),
                        done: done.clone(),
                    },
                    slot: waker_slots[i].clone(),
                }),
                1,
            );
        }

        // Feeder threads: bump a task's counter, then wake it — racing
        // against polls, steals and parks.
        let feeders: Vec<_> = (0..TASKS)
            .map(|i| {
                let n = counts[i].clone();
                let slot = waker_slots[i].clone();
                thread::spawn(move || {
                    for _ in 0..TARGET {
                        n.fetch_add(1, Ordering::SeqCst);
                        if let Some(w) = lock_unpoisoned(&slot).clone() {
                            w.on_wake();
                        }
                        std::hint::spin_loop();
                    }
                    // Final wake after the target is definitely visible.
                    loop {
                        if let Some(w) = lock_unpoisoned(&slot).clone() {
                            w.on_wake();
                            break;
                        }
                        thread::yield_now();
                    }
                })
            })
            .collect();
        for f in feeders {
            f.join().unwrap();
        }
        assert!(
            wait_until(Duration::from_secs(20), || done.load(Ordering::SeqCst)
                == TASKS as u32),
            "tasks finished: {}/{TASKS}, stats: {:?}",
            done.load(Ordering::SeqCst),
            rt.stats()
        );
    }

    #[test]
    fn drop_joins_workers_after_tasks_finish() {
        let done = Arc::new(AtomicU32::new(0));
        {
            let rt = Runtime::new(2);
            rt.handle().spawn_task(
                Box::new(Countdown {
                    name: "c".into(),
                    left: 20,
                    done: done.clone(),
                }),
                1,
            );
            // Drop immediately: shutdown must still run the task to done.
        }
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn global_runtime_is_shared_and_sized() {
        let a = RuntimeHandle::global();
        let b = RuntimeHandle::global();
        assert_eq!(a.workers(), b.workers());
        assert!(a.workers() >= 2);
        let s = a.stats();
        assert!(s.prometheus().contains("anytime_runtime_workers"));
    }
}
