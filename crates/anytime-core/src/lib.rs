//! # The Anytime Automaton
//!
//! A from-scratch implementation of the computation model from
//! *"The Anytime Automaton"* (Joshua San Miguel and Natalie Enright Jerger,
//! ISCA 2016): an approximate application is executed as a **parallel
//! pipeline of anytime computation stages**, so that
//!
//! 1. approximate versions of the *whole application output* are available
//!    early and improve monotonically over time (early availability);
//! 2. execution can be stopped or paused at any moment while still leaving
//!    a valid output behind (interruptibility);
//! 3. if never stopped, the final **precise** output is guaranteed to be
//!    reached.
//!
//! ## Model vocabulary
//!
//! - A stage's [`AnytimeBody`] decomposes its computation into intermediate
//!   computations `f_1, …, f_n` with increasing accuracy:
//!   [`Iterative`] bodies re-execute at growing accuracy levels (§III-B1);
//!   [`Diffusive`] bodies build each step on the previous output (§III-B2);
//!   [`SampledReduce`] / [`SampledMap`] are the paper's input/output
//!   sampling patterns driven by bijective permutations (from
//!   [`anytime_permute`]); [`Precise`] wraps non-anytime computations.
//! - Each stage owns a versioned output [`buffer`]; publications are atomic
//!   (Property 3) and single-writer (Property 2).
//! - [`PipelineBuilder`] composes stages into a DAG executed as an
//!   *asynchronous pipeline* (§III-C1); the
//!   [`sync_pipeline`] module adds *synchronous*
//!   composition for distributive children (§III-C2).
//! - A launched [`Automaton`] is controlled through its [`ControlToken`]:
//!   stop it whenever the current output is acceptable — otherwise just let
//!   it run longer.
//! - The [`serve`] module turns single runs into a deadline-budgeted
//!   service: a [`ServePool`] of replica pipelines with admission control,
//!   retries, hedged execution, load shedding, and per-replica circuit
//!   breakers. With an [`RtaPolicy`] installed, admission is backed by the
//!   [`rta`] response-time analysis: provably-infeasible requests are
//!   rejected with a certified bound, and the hedge/retry/shed budgets
//!   derive from analytical slack instead of latency-percentile guesses.
//!
//! ## Example
//!
//! ```
//! use anytime_core::{PipelineBuilder, SampledMap, Precise, StageOptions};
//! use anytime_permute::{DynPermutation, Tree1d};
//! use std::time::Duration;
//!
//! // Stage f: square 256 values, sampled in tree order (output sampling).
//! let input: Vec<f64> = (0..256).map(f64::from).collect();
//! let mut pb = PipelineBuilder::new();
//! let f = pb.source(
//!     "f",
//!     input,
//!     SampledMap::new(
//!         DynPermutation::new(Tree1d::new(256).unwrap()),
//!         |i: &Vec<f64>| vec![0.0; i.len()],
//!         |i, out: &mut Vec<f64>, idx| out[idx] = i[idx] * i[idx],
//!     ),
//!     StageOptions::with_publish_every(16),
//! );
//! // Stage g: sum whatever f has produced so far.
//! let g = pb.stage(
//!     "g",
//!     &f,
//!     Precise::new(|fs: &Vec<f64>| fs.iter().sum::<f64>()),
//!     StageOptions::default(),
//! );
//! let auto = pb.build().launch()?;
//! // Let it run to completion: the precise output is guaranteed.
//! let snap = g.wait_final_timeout(Duration::from_secs(30))?;
//! assert_eq!(*snap.value(), (0..256).map(|x| (x * x) as f64).sum::<f64>());
//! auto.join()?;
//! # Ok::<(), anytime_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
mod channel;
mod check;
pub mod contract;
mod control;
mod diffusive;
mod error;
mod executor;
#[cfg(feature = "fault-inject")]
mod faultinject;
pub mod governor;
mod iterative;
mod map;
pub mod metrics;
pub mod monitor;
mod notify;
pub mod observe;
mod parallel_map;
mod pipeline;
mod precise;
pub mod prelude;
mod reduce;
pub mod rta;
pub mod runtime;
pub mod scheduler;
pub mod serve;
mod stage;
mod supervisor;
pub mod sync_pipeline;
pub mod trace;
mod version;

// Flat re-exports of the most common types, kept for compatibility. New
// code should prefer `use anytime_core::prelude::*;` (see README); less
// common types live under their module paths (e.g.
// [`buffer::BufferOptions`], [`metrics::FaultStats`],
// [`monitor::AccuracyMonitor`], [`supervisor::Watchdog`],
// [`sync_pipeline::UpdateReceiver`]).
pub use buffer::{BufferReader, DoubleBuffer};
pub use control::ControlToken;
pub use diffusive::Diffusive;
pub use error::{CoreError, Result};
pub use executor::{Automaton, RunReport, StageReport};
#[cfg(feature = "fault-inject")]
pub use faultinject::{FaultPlan, StageFaults, WorkerKillPlan};
pub use governor::{BrownoutPolicy, BrownoutState, GovernorPolicy};
pub use iterative::Iterative;
pub use map::SampledMap;
pub use parallel_map::ParallelSampledMap;
pub use pipeline::{Pipeline, PipelineBuilder};
pub use precise::Precise;
pub use reduce::SampledReduce;
pub use rta::RtaPolicy;
pub use runtime::{Runtime, RuntimeHandle, RuntimeStats};
pub use serve::{
    BatchPolicy, BreakerPolicy, HedgePolicy, RetryPolicy, ServeOptions, ServePool, ServeResponse,
    ServeStatus, ShedPolicy,
};
pub use stage::{AnytimeBody, RestartPolicy, StageEnd, StageOptions, StepOutcome};
pub use supervisor::{FailurePolicy, StallAction, Supervision};
pub use trace::Recorder;
pub use version::{Snapshot, Version};
