//! Approximate-computing technique adapters for the Anytime Automaton.
//!
//! Section III-B of the paper shows how to apply standard approximation
//! techniques *in an anytime way* — so accuracy rises monotonically and the
//! precise result is guaranteed. This crate packages those recipes:
//!
//! | Technique | Paper construction | Module |
//! |---|---|---|
//! | Loop perforation | iterative, decreasing strides | [`StrideSchedule`] |
//! | Approximate storage | iterative, rising voltage + flush | [`VoltageSchedule`], [`run_iterative_with_store`] |
//! | Reduced fixed-point precision | diffusive, bit-plane sampling | [`BitSerialDot`], [`quantize_u8`], [`plane_mask`] |
//! | Reduced floating-point precision | iterative, rising mantissa bits | [`PrecisionSchedule`], [`truncate_mantissa`] |
//! | Fuzzy memoization / value reuse | iterative, shrinking tolerance | [`FuzzyMemo`], [`ToleranceSchedule`] |
//!
//! Data sampling — the remaining diffusive technique of §III-B2 — lives in
//! [`anytime_core`] ([`anytime_core::SampledReduce`],
//! [`anytime_core::SampledMap`]) since it is the model's workhorse.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(feature = "simd", feature(portable_simd))]

mod error;
mod floatprec;
mod memo;
mod perforation;
mod precision;
pub mod simd;
mod storage;

pub use error::ApproxError;
pub use floatprec::{truncate_mantissa, PrecisionSchedule};
pub use memo::{FuzzyMemo, ToleranceSchedule};
pub use perforation::{perforated_for_each, StrideSchedule};
pub use precision::{dot, plane_mask, quantize_u8, BitSerialDot};
pub use storage::{run_iterative_with_store, StorageLevelResult, VoltageSchedule};
