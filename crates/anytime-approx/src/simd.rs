//! Precision-kernel fast paths: portable SIMD under `--features simd`
//! (nightly), bit-identical scalar fallbacks by default.
//!
//! Both kernels are integer/bitwise, so lane order cannot perturb results
//! — the two paths are bit-identical by arithmetic, not by care:
//!
//! - [`plane_sum`] — the inner loop of [`crate::BitSerialDot::step`]:
//!   sums the inputs whose weight has a given bit set (integer addition,
//!   associative and commutative);
//! - [`quantize_slice_u8`] — bulk [`crate::quantize_u8`] (a bitwise mask).

#[cfg(feature = "simd")]
use std::simd::{cmp::SimdPartialEq, num::SimdInt, Select, Simd};

/// Lane count for the `i64` plane-sum kernel.
pub const LANES: usize = 8;

/// Sum of `input[i]` over every `i` whose `weights[i]` has bit `bit` set —
/// one bit plane of the bit-serial dot product.
///
/// # Panics
///
/// Panics if the slices differ in length, or (debug builds, scalar path)
/// on `i64` overflow. The SIMD path wraps on overflow; the bit-serial dot
/// product's contract (weights fit the declared width) keeps sums far
/// from the edge in practice.
pub fn plane_sum(input: &[i64], weights: &[i64], bit: u32) -> i64 {
    assert_eq!(input.len(), weights.len(), "equal-length vectors required");
    let mut sum = 0i64;
    let mut in_chunks = input.chunks_exact(LANES);
    let mut w_chunks = weights.chunks_exact(LANES);
    #[cfg(feature = "simd")]
    {
        let one = Simd::<i64, LANES>::splat(1);
        let zero = Simd::<i64, LANES>::splat(0);
        let mut acc = zero;
        for (ci, cw) in in_chunks.by_ref().zip(w_chunks.by_ref()) {
            let x = Simd::<i64, LANES>::from_slice(ci);
            let w = Simd::<i64, LANES>::from_slice(cw);
            let selected = ((w >> Simd::splat(i64::from(bit))) & one).simd_eq(one);
            acc += selected.select(x, zero);
        }
        // Integer addition is associative: reduction order is free.
        sum += acc.reduce_sum();
    }
    #[cfg(not(feature = "simd"))]
    for (ci, cw) in in_chunks.by_ref().zip(w_chunks.by_ref()) {
        for (&x, &w) in ci.iter().zip(cw) {
            if (w >> bit) & 1 == 1 {
                sum += x;
            }
        }
    }
    for (&x, &w) in in_chunks.remainder().iter().zip(w_chunks.remainder()) {
        if (w >> bit) & 1 == 1 {
            sum += x;
        }
    }
    sum
}

/// Masks every sample to its top `bits` bits in place — the bulk form of
/// [`crate::quantize_u8`].
///
/// # Panics
///
/// Panics unless `1 <= bits <= 8`.
pub fn quantize_slice_u8(values: &mut [u8], bits: u32) {
    assert!((1..=8).contains(&bits), "bits must be in 1..=8");
    let mask = 0xFFu8 << (8 - bits);
    #[cfg(feature = "simd")]
    {
        const WIDE: usize = 32;
        let m = Simd::<u8, WIDE>::splat(mask);
        let mut chunks = values.chunks_exact_mut(WIDE);
        for chunk in chunks.by_ref() {
            let v = Simd::<u8, WIDE>::from_slice(chunk) & m;
            chunk.copy_from_slice(&v.to_array());
        }
        for v in chunks.into_remainder() {
            *v &= mask;
        }
    }
    #[cfg(not(feature = "simd"))]
    for v in values {
        *v &= mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct scalar reference; both builds must match it exactly.
    fn reference_plane_sum(input: &[i64], weights: &[i64], bit: u32) -> i64 {
        input
            .iter()
            .zip(weights)
            .filter(|&(_, &w)| (w >> bit) & 1 == 1)
            .map(|(&x, _)| x)
            .sum()
    }

    #[test]
    fn plane_sum_matches_reference_exactly() {
        for len in [0usize, 1, 7, 8, 9, 64, 100, 333] {
            let input: Vec<i64> = (0..len).map(|i| i as i64 * 13 - 50).collect();
            let weights: Vec<i64> = (0..len).map(|i| (i as i64 * 37 + 11) % 256).collect();
            for bit in 0..8 {
                assert_eq!(
                    plane_sum(&input, &weights, bit),
                    reference_plane_sum(&input, &weights, bit),
                    "len {len} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn quantize_slice_matches_scalar_quantize() {
        for len in [0usize, 1, 31, 32, 33, 100, 257] {
            for bits in 1..=8u32 {
                let mut values: Vec<u8> = (0..len).map(|i| (i * 41 % 256) as u8).collect();
                let expect: Vec<u8> = values
                    .iter()
                    .map(|&v| crate::quantize_u8(v, bits))
                    .collect();
                quantize_slice_u8(&mut values, bits);
                assert_eq!(values, expect, "len {len} bits {bits}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn plane_sum_rejects_mismatched_lengths() {
        plane_sum(&[1], &[1, 2], 0);
    }
}
