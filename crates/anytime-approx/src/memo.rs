//! Fuzzy memoization as an anytime technique.
//!
//! The paper's taxonomy of approximate-computing techniques includes
//! reusing "previously seen values and computations" (fuzzy memoization of
//! floating-point functions, load-value approximation, Doppelgänger-style
//! similarity caches). The accuracy knob is the *matching tolerance*: a
//! wider tolerance reuses more cached results and computes less, at lower
//! accuracy. An anytime construction runs the computation iteratively at
//! shrinking tolerances, with tolerance zero (exact matching only) as the
//! final precise level — this module provides the cache and the tolerance
//! schedule.

use crate::ApproxError;
use std::collections::BTreeMap;

/// A fuzzy memoization cache for a unary `f64 -> f64` function.
///
/// Lookups within `tolerance` of a cached input reuse the cached output;
/// misses compute and insert. With `tolerance == 0.0` only (bit-)exact
/// inputs are reused, so results are precise.
///
/// # Examples
///
/// ```
/// use anytime_approx::FuzzyMemo;
///
/// let mut memo = FuzzyMemo::new(0.1);
/// let mut calls = 0;
/// let mut f = |x: f64| { calls += 1; x * x };
/// let a = memo.call(1.00, &mut f);
/// let b = memo.call(1.05, &mut f); // within tolerance: reused
/// assert_eq!(a, b);
/// assert_eq!(calls, 1);
/// ```
#[derive(Debug, Clone)]
pub struct FuzzyMemo {
    tolerance: f64,
    /// Cached (input, output) pairs keyed by the input's ordered bits.
    cache: BTreeMap<OrderedF64, f64>,
    hits: u64,
    misses: u64,
}

/// Total-order wrapper over finite `f64` keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct OrderedF64(u64);

impl OrderedF64 {
    fn new(x: f64) -> Self {
        // Flip ordering bits so the integer order matches the float order
        // (standard total-order trick for finite values).
        let bits = x.to_bits();
        let flipped = if bits >> 63 == 1 {
            !bits
        } else {
            bits | (1 << 63)
        };
        Self(flipped)
    }

    fn value(self) -> f64 {
        let bits = if self.0 >> 63 == 1 {
            self.0 & !(1 << 63)
        } else {
            !self.0
        };
        f64::from_bits(bits)
    }
}

impl FuzzyMemo {
    /// Creates a cache with the given matching tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is negative or not finite.
    pub fn new(tolerance: f64) -> Self {
        assert!(
            tolerance.is_finite() && tolerance >= 0.0,
            "tolerance must be finite and non-negative"
        );
        Self {
            tolerance,
            cache: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The matching tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (actual computations) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// `true` if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Evaluates `f(x)`, reusing the nearest cached result within the
    /// tolerance when available.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite (NaN has no usable ordering).
    pub fn call(&mut self, x: f64, f: &mut impl FnMut(f64) -> f64) -> f64 {
        assert!(x.is_finite(), "fuzzy memoization requires finite inputs");
        if let Some(hit) = self.nearest_within(x) {
            self.hits += 1;
            return hit;
        }
        let y = f(x);
        self.cache.insert(OrderedF64::new(x), y);
        self.misses += 1;
        y
    }

    fn nearest_within(&self, x: f64) -> Option<f64> {
        let key = OrderedF64::new(x);
        let below = self.cache.range(..=key).next_back();
        let above = self.cache.range(key..).next();
        let mut best: Option<(f64, f64)> = None; // (distance, output)
        for entry in [below, above].into_iter().flatten() {
            let dist = (entry.0.value() - x).abs();
            if dist <= self.tolerance && best.is_none_or(|(d, _)| dist < d) {
                best = Some((dist, *entry.1));
            }
        }
        best.map(|(_, y)| y)
    }
}

/// A shrinking tolerance schedule ending at 0 (exact), for iterative
/// anytime memoized stages.
#[derive(Debug, Clone, PartialEq)]
pub struct ToleranceSchedule {
    tolerances: Vec<f64>,
}

impl ToleranceSchedule {
    /// Creates a schedule from explicit tolerances.
    ///
    /// # Errors
    ///
    /// Returns [`ApproxError::InvalidSchedule`] unless tolerances strictly
    /// decrease and end at 0.
    pub fn new(tolerances: Vec<f64>) -> Result<Self, ApproxError> {
        if tolerances.last().copied() != Some(0.0) {
            return Err(ApproxError::InvalidSchedule(
                "tolerance schedule must end at 0 (exact)".into(),
            ));
        }
        if tolerances.iter().any(|t| !t.is_finite() || *t < 0.0)
            || tolerances.windows(2).any(|w| w[1] >= w[0])
        {
            return Err(ApproxError::InvalidSchedule(
                "tolerances must strictly decrease and be non-negative".into(),
            ));
        }
        Ok(Self { tolerances })
    }

    /// A geometric schedule `start, start/ratio, …` with `levels - 1`
    /// shrinking steps followed by the exact level.
    ///
    /// # Errors
    ///
    /// Returns [`ApproxError::InvalidSchedule`] for non-positive `start`,
    /// `ratio <= 1`, or `levels < 2`.
    pub fn geometric(start: f64, ratio: f64, levels: usize) -> Result<Self, ApproxError> {
        let start_ok = start.is_finite() && start > 0.0;
        let ratio_ok = ratio.is_finite() && ratio > 1.0;
        if !start_ok || !ratio_ok {
            return Err(ApproxError::InvalidSchedule(
                "geometric schedule needs start > 0 and ratio > 1".into(),
            ));
        }
        if levels < 2 {
            return Err(ApproxError::InvalidSchedule(
                "geometric schedule needs at least two levels".into(),
            ));
        }
        let mut tolerances: Vec<f64> = (0..levels - 1)
            .map(|k| start / ratio.powi(k as i32))
            .collect();
        tolerances.push(0.0);
        Self::new(tolerances)
    }

    /// Number of accuracy levels.
    pub fn levels(&self) -> u64 {
        self.tolerances.len() as u64
    }

    /// The tolerance at accuracy level `k`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn tolerance(&self, level: u64) -> f64 {
        self.tolerances[level as usize]
    }

    /// Builds a fresh cache for level `k`. (Caches cannot carry across
    /// levels: a wide-tolerance entry would poison tighter levels, the
    /// same flush discipline approximate storage needs.)
    pub fn memo(&self, level: u64) -> FuzzyMemo {
        FuzzyMemo::new(self.tolerance(level))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_tolerance_is_precise() {
        let mut memo = FuzzyMemo::new(0.0);
        let mut f = |x: f64| x.sin();
        for &x in &[0.0, 0.5, 0.5000001, -0.5, 3.25] {
            assert_eq!(memo.call(x, &mut f), x.sin());
        }
        assert_eq!(memo.hits(), 0);
        assert_eq!(memo.misses(), 5);
        // Exact repeats do hit.
        assert_eq!(memo.call(0.5, &mut f), 0.5f64.sin());
        assert_eq!(memo.hits(), 1);
    }

    #[test]
    fn fuzzy_matching_reuses_nearby() {
        let mut memo = FuzzyMemo::new(0.25);
        let mut calls = 0u32;
        let mut f = |x: f64| {
            calls += 1;
            x * 2.0
        };
        let a = memo.call(1.0, &mut f);
        assert_eq!(memo.call(1.2, &mut f), a); // reused
        assert_eq!(memo.call(0.8, &mut f), a); // reused (below)
        assert_ne!(memo.call(2.0, &mut f), a); // outside tolerance
        assert_eq!(calls, 2);
        assert_eq!(memo.hits(), 2);
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn nearest_entry_wins() {
        let mut memo = FuzzyMemo::new(1.0);
        let mut f = |x: f64| x;
        memo.call(0.0, &mut f);
        memo.call(2.0, &mut f);
        // 1.2 is within tolerance of both; the nearer (2.0) must win.
        assert_eq!(memo.call(1.2, &mut f), 2.0);
    }

    #[test]
    fn negative_keys_order_correctly() {
        let mut memo = FuzzyMemo::new(0.1);
        let mut f = |x: f64| x * 10.0;
        assert_eq!(memo.call(-1.0, &mut f), -10.0);
        assert_eq!(memo.call(-1.05, &mut f), -10.0); // fuzzy hit
        assert_eq!(memo.call(1.0, &mut f), 10.0); // far away: miss
        assert_eq!(memo.misses(), 2);
    }

    #[test]
    fn error_shrinks_with_tolerance_level() {
        // Anytime property: running the same workload at shrinking
        // tolerances yields non-increasing total error, ending exact.
        let schedule = ToleranceSchedule::geometric(0.5, 2.0, 5).unwrap();
        let inputs: Vec<f64> = (0..500).map(|i| (i % 97) as f64 * 0.013).collect();
        let mut last_err = f64::INFINITY;
        for level in 0..schedule.levels() {
            let mut memo = schedule.memo(level);
            let mut f = |x: f64| x.sin();
            let err: f64 = inputs
                .iter()
                .map(|&x| (memo.call(x, &mut f) - x.sin()).abs())
                .sum();
            assert!(err <= last_err + 1e-12, "level {level}: {err} > {last_err}");
            last_err = err;
        }
        assert_eq!(last_err, 0.0);
    }

    #[test]
    fn hit_rate_falls_with_tolerance() {
        let schedule = ToleranceSchedule::geometric(1.0, 4.0, 4).unwrap();
        let inputs: Vec<f64> = (0..300).map(|i| (i as f64 * 0.37) % 10.0).collect();
        let mut last_hits = u64::MAX;
        for level in 0..schedule.levels() {
            let mut memo = schedule.memo(level);
            let mut f = |x: f64| x.cos();
            for &x in &inputs {
                memo.call(x, &mut f);
            }
            assert!(memo.hits() <= last_hits, "level {level}");
            last_hits = memo.hits();
        }
    }

    #[test]
    fn schedule_validation() {
        assert!(ToleranceSchedule::new(vec![0.5, 0.1, 0.0]).is_ok());
        assert!(ToleranceSchedule::new(vec![0.5, 0.1]).is_err());
        assert!(ToleranceSchedule::new(vec![0.1, 0.5, 0.0]).is_err());
        assert!(ToleranceSchedule::geometric(0.0, 2.0, 3).is_err());
        assert!(ToleranceSchedule::geometric(1.0, 1.0, 3).is_err());
        assert!(ToleranceSchedule::geometric(1.0, 2.0, 1).is_err());
        let s = ToleranceSchedule::geometric(1.0, 2.0, 4).unwrap();
        assert_eq!(s.levels(), 4);
        assert_eq!(s.tolerance(0), 1.0);
        assert_eq!(s.tolerance(3), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_input_rejected() {
        FuzzyMemo::new(0.1).call(f64::NAN, &mut |x| x);
    }
}
