//! Reduced floating-point precision schedules.
//!
//! The paper's iterative-stage example: "if applying reduced floating-point
//! precision, `f_1` computes `f` with the lowest precision while `f_n`
//! computes with the highest" (§III-B1). Truncating mantissa bits models
//! narrow FPUs / precision-scaled accelerators; an increasing-bits schedule
//! plugs directly into [`anytime_core::Iterative`].

use crate::ApproxError;

/// Truncates an `f64` mantissa to its top `bits` explicit bits
/// (`0 ≤ bits ≤ 52`), rounding toward zero.
///
/// With `bits = 52` the value is unchanged; with `bits = 0` only the
/// implicit leading one (and exponent/sign) survives.
///
/// # Panics
///
/// Panics if `bits > 52`.
///
/// # Examples
///
/// ```
/// use anytime_approx::truncate_mantissa;
/// assert_eq!(truncate_mantissa(1.0 + 0.5 + 0.25, 1), 1.5);
/// assert_eq!(truncate_mantissa(std::f64::consts::PI, 52), std::f64::consts::PI);
/// ```
pub fn truncate_mantissa(x: f64, bits: u32) -> f64 {
    assert!(bits <= 52, "f64 has 52 explicit mantissa bits");
    if !x.is_finite() {
        return x;
    }
    let raw = x.to_bits();
    let keep_mask = !((1u64 << (52 - bits)) - 1);
    // Preserve sign and exponent; truncate low mantissa bits.
    let mantissa_mask = (1u64 << 52) - 1;
    let truncated = raw & !(mantissa_mask & !keep_mask);
    f64::from_bits(truncated)
}

/// An increasing mantissa-precision schedule ending at full precision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrecisionSchedule {
    bits: Vec<u32>,
}

impl PrecisionSchedule {
    /// Creates a schedule from explicit mantissa bit counts.
    ///
    /// # Errors
    ///
    /// Returns [`ApproxError::InvalidSchedule`] unless bit counts strictly
    /// increase and end at 52 (full f64 precision).
    pub fn new(bits: Vec<u32>) -> Result<Self, ApproxError> {
        if bits.is_empty() || *bits.last().expect("non-empty") != 52 {
            return Err(ApproxError::InvalidSchedule(
                "precision schedule must end at 52 bits".into(),
            ));
        }
        if bits.windows(2).any(|w| w[1] <= w[0]) {
            return Err(ApproxError::InvalidSchedule(
                "precision must strictly increase".into(),
            ));
        }
        Ok(Self { bits })
    }

    /// A doubling schedule: `start, 2·start, …` capped by a final 52.
    ///
    /// # Errors
    ///
    /// Returns [`ApproxError::InvalidSchedule`] if `start` is 0 or ≥ 52.
    pub fn doubling(start: u32) -> Result<Self, ApproxError> {
        if start == 0 || start >= 52 {
            return Err(ApproxError::InvalidSchedule(
                "doubling schedule needs 0 < start < 52".into(),
            ));
        }
        let mut bits = Vec::new();
        let mut b = start;
        while b < 52 {
            bits.push(b);
            b *= 2;
        }
        bits.push(52);
        Self::new(bits)
    }

    /// Mantissa bits at accuracy level `k`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn bits(&self, level: u64) -> u32 {
        self.bits[level as usize]
    }

    /// Number of accuracy levels.
    pub fn levels(&self) -> u64 {
        self.bits.len() as u64
    }

    /// Truncates `x` to the precision of level `k`.
    pub fn apply(&self, x: f64, level: u64) -> f64 {
        truncate_mantissa(x, self.bits(level))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncation_error_shrinks_with_bits() {
        let x = std::f64::consts::E * 1000.0;
        let mut last_err = f64::INFINITY;
        for bits in [4, 8, 16, 32, 52] {
            let err = (x - truncate_mantissa(x, bits)).abs();
            assert!(err <= last_err, "bits={bits}: {err} > {last_err}");
            last_err = err;
        }
        assert_eq!(last_err, 0.0);
    }

    #[test]
    fn truncation_preserves_sign_and_specials() {
        // -2.75 = -1.011₂ × 2¹; keeping one explicit mantissa bit (0)
        // leaves -1.0 × 2¹.
        assert_eq!(truncate_mantissa(-2.75, 1), -2.0);
        assert_eq!(truncate_mantissa(0.0, 4), 0.0);
        assert!(truncate_mantissa(f64::NAN, 4).is_nan());
        assert_eq!(truncate_mantissa(f64::INFINITY, 4), f64::INFINITY);
    }

    #[test]
    fn truncation_rounds_toward_zero() {
        let x = 1.9999;
        for bits in 0..52 {
            assert!(truncate_mantissa(x, bits) <= x);
        }
        assert!(truncate_mantissa(-1.9999, 4) >= -1.9999);
    }

    #[test]
    fn doubling_schedule_shape() {
        let s = PrecisionSchedule::doubling(8).unwrap();
        assert_eq!(s.levels(), 4);
        assert_eq!(s.bits(0), 8);
        assert_eq!(s.bits(3), 52);
    }

    #[test]
    fn schedule_validation() {
        assert!(PrecisionSchedule::new(vec![8, 16, 52]).is_ok());
        assert!(PrecisionSchedule::new(vec![]).is_err());
        assert!(PrecisionSchedule::new(vec![8, 16]).is_err());
        assert!(PrecisionSchedule::new(vec![16, 8, 52]).is_err());
        assert!(PrecisionSchedule::doubling(0).is_err());
        assert!(PrecisionSchedule::doubling(52).is_err());
    }

    #[test]
    fn apply_uses_level_bits() {
        let s = PrecisionSchedule::new(vec![1, 52]).unwrap();
        assert_eq!(s.apply(1.75, 0), 1.5);
        assert_eq!(s.apply(1.75, 1), 1.75);
    }
}
