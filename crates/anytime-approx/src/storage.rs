//! Approximate storage as an iterative anytime technique (paper §III-B1).
//!
//! Storage techniques (drowsy SRAM, low-refresh DRAM) expose an
//! accuracy–efficiency knob — here, the cell supply voltage. The anytime
//! construction executes the computation at *increasing* storage accuracy
//! levels, with the nominal (precise) level last. Because storage errors
//! are **data-destructive**, the storage must be flushed (reinitialized
//! from precise values) between intermediate computations so corruption
//! from level `i−1` cannot degrade level `i`; [`run_iterative_with_store`]
//! implements exactly that discipline on a simulated
//! [`anytime_sim::ApproxStore`].

use crate::ApproxError;
use anytime_sim::sram::{supply_power_saving, SramModel};
use anytime_sim::ApproxStore;

/// An increasing supply-voltage schedule ending at nominal (1.0).
///
/// # Examples
///
/// ```
/// use anytime_approx::VoltageSchedule;
/// let s = VoltageSchedule::new(vec![0.316, 0.45, 1.0])?;
/// assert_eq!(s.levels(), 3);
/// assert!(s.upset_probability(0) > s.upset_probability(1));
/// assert!(s.upset_probability(2) < 1e-12);
/// # Ok::<(), anytime_approx::ApproxError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageSchedule {
    voltages: Vec<f64>,
}

impl VoltageSchedule {
    /// Creates a schedule from voltage fractions of nominal.
    ///
    /// # Errors
    ///
    /// Returns [`ApproxError::InvalidSchedule`] unless voltages strictly
    /// increase within `(0, 1]` and end at 1.0.
    pub fn new(voltages: Vec<f64>) -> Result<Self, ApproxError> {
        if voltages.is_empty() || (voltages.last().copied() != Some(1.0)) {
            return Err(ApproxError::InvalidSchedule(
                "voltage schedule must end at nominal (1.0)".into(),
            ));
        }
        if voltages.iter().any(|&v| v <= 0.0 || v > 1.0)
            || voltages.windows(2).any(|w| w[1] <= w[0])
        {
            return Err(ApproxError::InvalidSchedule(
                "voltages must strictly increase within (0, 1]".into(),
            ));
        }
        Ok(Self { voltages })
    }

    /// Number of accuracy levels.
    pub fn levels(&self) -> u64 {
        self.voltages.len() as u64
    }

    /// Voltage fraction at accuracy level `k`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn voltage(&self, level: u64) -> f64 {
        self.voltages[level as usize]
    }

    /// Per-bit read-upset probability at level `k`.
    pub fn upset_probability(&self, level: u64) -> f64 {
        anytime_sim::sram::upset_probability(self.voltage(level))
    }

    /// Supply-power saving at level `k` relative to nominal.
    pub fn power_saving(&self, level: u64) -> f64 {
        supply_power_saving(self.voltage(level))
    }
}

/// One level's result from [`run_iterative_with_store`].
#[derive(Debug, Clone)]
pub struct StorageLevelResult {
    /// Accuracy level index.
    pub level: u64,
    /// Voltage fraction used.
    pub voltage: f64,
    /// Output bytes as read back through the (possibly corrupting) store.
    pub output: Vec<u8>,
    /// Bits flipped while this level's output resided in the store.
    pub flips: u64,
}

/// Runs an iterative anytime computation whose output lives in approximate
/// storage: for each level, computes into the store at that level's
/// voltage, reads the (possibly corrupted) result back, and **flushes**
/// before the next level so corruption never carries across levels.
///
/// `compute` is the precise computation (the approximation comes entirely
/// from the storage). The final level runs at nominal voltage and therefore
/// returns the precise output.
pub fn run_iterative_with_store(
    schedule: &VoltageSchedule,
    seed: u64,
    compute: impl Fn() -> Vec<u8>,
) -> Vec<StorageLevelResult> {
    let mut results = Vec::with_capacity(schedule.levels() as usize);
    for level in 0..schedule.levels() {
        let voltage = schedule.voltage(level);
        let model = SramModel::at_voltage(voltage, seed.wrapping_add(level));
        let mut store = ApproxStore::new(compute(), model);
        let output = store.read();
        let flips = store.model().flips();
        // Data-destructive semantics: corruption stays in the cells; the
        // flush (reinitialization) is what isolates the next level.
        store.flush();
        results.push(StorageLevelResult {
            level,
            voltage,
            output,
            flips,
        });
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> VoltageSchedule {
        VoltageSchedule::new(vec![0.25, 0.316, 0.45, 1.0]).unwrap()
    }

    #[test]
    fn schedule_validation() {
        assert!(VoltageSchedule::new(vec![1.0]).is_ok());
        assert!(VoltageSchedule::new(vec![]).is_err());
        assert!(VoltageSchedule::new(vec![0.5]).is_err()); // no nominal end
        assert!(VoltageSchedule::new(vec![0.5, 0.5, 1.0]).is_err());
        assert!(VoltageSchedule::new(vec![0.0, 1.0]).is_err());
        assert!(VoltageSchedule::new(vec![0.5, 1.5]).is_err());
    }

    #[test]
    fn upset_falls_and_saving_falls_with_voltage() {
        let s = schedule();
        for l in 1..s.levels() {
            assert!(s.upset_probability(l) < s.upset_probability(l - 1));
            assert!(s.power_saving(l) < s.power_saving(l - 1));
        }
        assert_eq!(s.power_saving(s.levels() - 1), 0.0);
    }

    #[test]
    fn final_level_is_precise() {
        let data: Vec<u8> = (0..255).collect();
        let results = run_iterative_with_store(&schedule(), 7, || data.clone());
        let last = results.last().unwrap();
        assert_eq!(last.output, data);
        assert_eq!(last.flips, 0);
        assert_eq!(results.len(), 4);
    }

    #[test]
    fn lower_voltage_flips_more() {
        // Use a big buffer so the statistics are stable.
        let data = vec![0u8; 1 << 20];
        let results = run_iterative_with_store(&schedule(), 3, || data.clone());
        assert!(
            results[0].flips >= results[2].flips,
            "{} < {}",
            results[0].flips,
            results[2].flips
        );
        // Deep drowsy level (0.25 V): expect at least a handful of flips in
        // 8 Mbit at ~1e-4/bit.
        assert!(results[0].flips > 0);
    }

    #[test]
    fn levels_are_isolated_by_flush() {
        // Same seed, two runs: the final level's output never depends on
        // earlier levels' corruption.
        let data: Vec<u8> = vec![0xA5; 4096];
        let a = run_iterative_with_store(&schedule(), 11, || data.clone());
        let only_nominal = VoltageSchedule::new(vec![1.0]).unwrap();
        let b = run_iterative_with_store(&only_nominal, 11, || data.clone());
        assert_eq!(a.last().unwrap().output, b.last().unwrap().output);
    }
}
