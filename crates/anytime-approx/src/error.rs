use std::error::Error;
use std::fmt;

/// Errors produced when constructing approximation schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ApproxError {
    /// A schedule violates its monotonicity/termination invariants.
    InvalidSchedule(String),
}

impl fmt::Display for ApproxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidSchedule(msg) => write!(f, "invalid approximation schedule: {msg}"),
        }
    }
}

impl Error for ApproxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        assert!(!ApproxError::InvalidSchedule("x".into())
            .to_string()
            .is_empty());
    }
}
