//! Anytime loop perforation (paper §III-B1).
//!
//! Loop perforation skips loop iterations with a fixed stride, trading
//! accuracy for runtime. The anytime construction re-executes the
//! perforated computation with progressively *smaller* strides
//! `s_1 > s_2 > … > s_n = 1`, so accuracy rises level by level and the last
//! level (stride 1) is precise. This is inherently **iterative**: work at
//! common multiples of the strides is redone at every level — the paper's
//! dwt53 benchmark pays exactly this cost, which is why its
//! runtime–accuracy curve is steeper than the diffusive benchmarks'.

use crate::ApproxError;

/// A decreasing stride schedule ending at 1.
///
/// # Examples
///
/// ```
/// use anytime_approx::StrideSchedule;
/// let s = StrideSchedule::halving(8)?;
/// assert_eq!(s.strides(), &[8, 4, 2, 1]);
/// assert_eq!(s.levels(), 4);
/// # Ok::<(), anytime_approx::ApproxError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrideSchedule {
    strides: Vec<usize>,
}

impl StrideSchedule {
    /// Creates a schedule from explicit strides.
    ///
    /// # Errors
    ///
    /// Returns [`ApproxError::InvalidSchedule`] unless the strides are
    /// strictly decreasing and end at 1.
    pub fn new(strides: Vec<usize>) -> Result<Self, ApproxError> {
        if strides.is_empty() || *strides.last().expect("non-empty") != 1 {
            return Err(ApproxError::InvalidSchedule(
                "stride schedule must end at 1".into(),
            ));
        }
        if strides.windows(2).any(|w| w[1] >= w[0]) {
            return Err(ApproxError::InvalidSchedule(
                "strides must strictly decrease".into(),
            ));
        }
        Ok(Self { strides })
    }

    /// The power-of-two schedule `start, start/2, …, 2, 1`.
    ///
    /// # Errors
    ///
    /// Returns [`ApproxError::InvalidSchedule`] unless `start` is a
    /// positive power of two.
    pub fn halving(start: usize) -> Result<Self, ApproxError> {
        if start == 0 || !start.is_power_of_two() {
            return Err(ApproxError::InvalidSchedule(
                "halving schedule needs a power-of-two start".into(),
            ));
        }
        let mut strides = Vec::new();
        let mut s = start;
        loop {
            strides.push(s);
            if s == 1 {
                break;
            }
            s /= 2;
        }
        Ok(Self { strides })
    }

    /// The strides, largest first.
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Number of accuracy levels (`n` in the paper's notation).
    pub fn levels(&self) -> u64 {
        self.strides.len() as u64
    }

    /// The stride at accuracy level `k ∈ [0, levels)`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn stride(&self, level: u64) -> usize {
        self.strides[level as usize]
    }

    /// Iterates the loop indices a perforated loop of level `k` executes:
    /// `0, s_k, 2·s_k, …` below `n`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn indices(&self, level: u64, n: usize) -> impl Iterator<Item = usize> + '_ {
        let stride = self.stride(level);
        (0..n).step_by(stride)
    }

    /// Total iterations executed across all levels for an `n`-iteration
    /// loop — the redundant-work measure of §III-B1.
    pub fn total_iterations(&self, n: usize) -> usize {
        self.strides.iter().map(|&s| n.div_ceil(s)).sum()
    }

    /// Redundancy factor: total iterations across levels divided by the
    /// precise loop's `n`. Always ≥ 1; equals 1 only for the trivial
    /// single-level (stride 1) schedule.
    pub fn redundancy(&self, n: usize) -> f64 {
        assert!(n > 0, "redundancy of an empty loop is undefined");
        self.total_iterations(n) as f64 / n as f64
    }
}

/// Runs a perforated loop body at one level: calls `body(i)` for every
/// index the level executes.
pub fn perforated_for_each(
    schedule: &StrideSchedule,
    level: u64,
    n: usize,
    mut body: impl FnMut(usize),
) {
    for i in schedule.indices(level, n) {
        body(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halving_schedule_shape() {
        let s = StrideSchedule::halving(16).unwrap();
        assert_eq!(s.strides(), &[16, 8, 4, 2, 1]);
        assert_eq!(s.stride(0), 16);
        assert_eq!(s.stride(4), 1);
    }

    #[test]
    fn custom_schedule_validation() {
        assert!(StrideSchedule::new(vec![7, 3, 1]).is_ok());
        assert!(StrideSchedule::new(vec![]).is_err());
        assert!(StrideSchedule::new(vec![4, 2]).is_err()); // no stride 1
        assert!(StrideSchedule::new(vec![4, 4, 1]).is_err()); // not decreasing
        assert!(StrideSchedule::halving(6).is_err());
        assert!(StrideSchedule::halving(0).is_err());
    }

    #[test]
    fn last_level_is_precise() {
        let s = StrideSchedule::halving(4).unwrap();
        let idxs: Vec<usize> = s.indices(s.levels() - 1, 5).collect();
        assert_eq!(idxs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn first_level_skips() {
        let s = StrideSchedule::halving(4).unwrap();
        let idxs: Vec<usize> = s.indices(0, 10).collect();
        assert_eq!(idxs, vec![0, 4, 8]);
    }

    #[test]
    fn redundancy_accounts_for_re_execution() {
        let s = StrideSchedule::halving(4).unwrap();
        // n=8: levels run 2 + 4 + 8 = 14 iterations; precise needs 8.
        assert_eq!(s.total_iterations(8), 14);
        assert!((s.redundancy(8) - 1.75).abs() < 1e-12);
        // Trivial schedule has no redundancy.
        let t = StrideSchedule::new(vec![1]).unwrap();
        assert_eq!(t.redundancy(100), 1.0);
    }

    #[test]
    fn for_each_visits_level_indices() {
        let s = StrideSchedule::halving(2).unwrap();
        let mut seen = Vec::new();
        perforated_for_each(&s, 0, 7, |i| seen.push(i));
        assert_eq!(seen, vec![0, 2, 4, 6]);
    }
}
