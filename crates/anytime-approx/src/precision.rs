//! Reduced fixed-point precision as a diffusive anytime technique
//! (paper §III-B2, Figure 6).
//!
//! The bit representation of an integer is a sum of powers of two, and
//! addition is commutative — so fixed-point data is *samplable by bit
//! plane*. Computing with the most-significant planes first and diffusing
//! lower planes into the output later performs **no extra work** compared
//! with the precise computation (integer multiplication is a sum of
//! partial products anyway), while giving usable approximations early.
//! This draws from classic bit-serial / distributed arithmetic.

use crate::ApproxError;

/// Quantizes an 8-bit sample to its top `bits` bits (low bits zeroed).
///
/// This is the paper's "pixel precision" knob for Figure 19 (8/6/4/2-bit
/// 2dconv).
///
/// # Panics
///
/// Panics unless `1 <= bits <= 8`.
///
/// # Examples
///
/// ```
/// use anytime_approx::quantize_u8;
/// assert_eq!(quantize_u8(0b1011_0111, 4), 0b1011_0000);
/// assert_eq!(quantize_u8(255, 8), 255);
/// ```
pub fn quantize_u8(value: u8, bits: u32) -> u8 {
    assert!((1..=8).contains(&bits), "bits must be in 1..=8");
    value & (0xFFu8 << (8 - bits))
}

/// The mask selecting the top `planes` bit planes of a `width`-bit word —
/// the paper's `W & 2^(32−i)`-style progressive masks.
///
/// # Panics
///
/// Panics unless `1 <= planes <= width <= 64`.
pub fn plane_mask(width: u32, planes: u32) -> u64 {
    assert!(
        (1..=64).contains(&width) && planes >= 1 && planes <= width,
        "need 1 <= planes <= width <= 64"
    );
    let full = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    if planes == width {
        return full;
    }
    full & !(full >> planes)
}

/// An anytime fixed-point dot product computed bit-serially over the weight
/// vector's planes, most significant first (paper Figure 6).
///
/// After `i` steps the accumulated output equals the precise dot product of
/// `I` with `W` masked to its top `i` bit planes; after all `width` steps it
/// is exactly precise. Each step adds only that plane's partial products —
/// the diffusive, zero-redundancy formulation.
///
/// # Examples
///
/// ```
/// use anytime_approx::BitSerialDot;
///
/// let input = vec![3i64, -2, 5];
/// let weights = vec![200i64, 100, 50];
/// let mut dot = BitSerialDot::new(input.clone(), weights.clone(), 10)?;
/// let mut last = 0;
/// while let Some(partial) = dot.step() {
///     last = partial;
/// }
/// let precise: i64 = input.iter().zip(&weights).map(|(a, b)| a * b).sum();
/// assert_eq!(last, precise);
/// # Ok::<(), anytime_approx::ApproxError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BitSerialDot {
    input: Vec<i64>,
    weights: Vec<i64>,
    width: u32,
    next_plane: u32,
    acc: i64,
}

impl BitSerialDot {
    /// Creates a bit-serial dot product over `width`-bit non-negative
    /// weights.
    ///
    /// # Errors
    ///
    /// Returns [`ApproxError::InvalidSchedule`] if the vectors differ in
    /// length, `width` is outside `1..=63`, or any weight needs more than
    /// `width` bits or is negative (sign-magnitude weights should be
    /// split by the caller).
    pub fn new(input: Vec<i64>, weights: Vec<i64>, width: u32) -> Result<Self, ApproxError> {
        if input.len() != weights.len() {
            return Err(ApproxError::InvalidSchedule(
                "input and weight vectors must have equal length".into(),
            ));
        }
        if !(1..=63).contains(&width) {
            return Err(ApproxError::InvalidSchedule(
                "width must be in 1..=63".into(),
            ));
        }
        let limit = 1i64 << width;
        if weights.iter().any(|&w| w < 0 || w >= limit) {
            return Err(ApproxError::InvalidSchedule(
                "weights must be non-negative and fit in width bits".into(),
            ));
        }
        Ok(Self {
            input,
            weights,
            width,
            next_plane: 0,
            acc: 0,
        })
    }

    /// Bit planes processed so far.
    pub fn planes_done(&self) -> u32 {
        self.next_plane
    }

    /// Total planes (`width`).
    pub fn planes(&self) -> u32 {
        self.width
    }

    /// The current accumulated approximation.
    pub fn value(&self) -> i64 {
        self.acc
    }

    /// Processes the next-most-significant weight plane, returning the
    /// improved approximation, or `None` once precise.
    pub fn step(&mut self) -> Option<i64> {
        if self.next_plane >= self.width {
            return None;
        }
        // Plane p (0 = most significant) corresponds to bit width-1-p.
        let bit = self.width - 1 - self.next_plane;
        let weight_of_plane = 1i64 << bit;
        let plane_sum = crate::simd::plane_sum(&self.input, &self.weights, bit);
        self.acc += plane_sum * weight_of_plane;
        self.next_plane += 1;
        Some(self.acc)
    }

    /// Runs all remaining planes and returns the precise dot product.
    pub fn finish(mut self) -> i64 {
        while self.step().is_some() {}
        self.acc
    }
}

/// Precise reference dot product.
pub fn dot(input: &[i64], weights: &[i64]) -> i64 {
    assert_eq!(input.len(), weights.len(), "equal-length vectors required");
    input.iter().zip(weights).map(|(a, b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_keeps_top_bits() {
        assert_eq!(quantize_u8(0xFF, 2), 0xC0);
        assert_eq!(quantize_u8(0x7F, 1), 0x00);
        assert_eq!(quantize_u8(0x80, 1), 0x80);
        for v in 0..=255u8 {
            assert_eq!(quantize_u8(v, 8), v);
            assert!(quantize_u8(v, 4) <= v);
        }
    }

    #[test]
    fn quantization_error_shrinks_with_bits() {
        let err = |bits: u32| -> u32 {
            (0..=255u8)
                .map(|v| u32::from(v) - u32::from(quantize_u8(v, bits)))
                .sum()
        };
        assert!(err(2) > err(4));
        assert!(err(4) > err(6));
        assert_eq!(err(8), 0);
    }

    #[test]
    fn plane_masks_are_progressive() {
        assert_eq!(plane_mask(8, 1), 0b1000_0000);
        assert_eq!(plane_mask(8, 3), 0b1110_0000);
        assert_eq!(plane_mask(8, 8), 0xFF);
        assert_eq!(plane_mask(64, 64), u64::MAX);
        // Each extra plane adds exactly one bit.
        for p in 1..8 {
            assert_eq!((plane_mask(8, p + 1) ^ plane_mask(8, p)).count_ones(), 1);
        }
    }

    #[test]
    fn bit_serial_partials_match_masked_dot() {
        // After i planes the partial equals dot(I, W & mask_i): the paper's
        // invariant.
        let input = vec![7i64, -3, 11, 2];
        let weights = vec![0b1011_0101i64, 0b0110_1110, 0b1111_0000, 0b0000_1111];
        let mut bs = BitSerialDot::new(input.clone(), weights.clone(), 8).unwrap();
        for planes in 1..=8u32 {
            let partial = bs.step().unwrap();
            let mask = plane_mask(8, planes) as i64;
            let masked: Vec<i64> = weights.iter().map(|&w| w & mask).collect();
            assert_eq!(partial, dot(&input, &masked), "plane {planes}");
        }
        assert!(bs.step().is_none());
    }

    #[test]
    fn finish_is_precise() {
        let input = vec![1i64, 2, 3];
        let weights = vec![100i64, 0, 255];
        let bs = BitSerialDot::new(input.clone(), weights.clone(), 8).unwrap();
        assert_eq!(bs.finish(), dot(&input, &weights));
    }

    #[test]
    fn error_is_monotone_nonincreasing() {
        let input = vec![5i64, 9, -4, 3, 8];
        let weights = vec![0x3Ai64, 0x7F, 0x15, 0x60, 0x0F];
        let precise = dot(&input, &weights);
        let mut bs = BitSerialDot::new(input, weights, 8).unwrap();
        let mut last_err = i64::MAX;
        while let Some(p) = bs.step() {
            let err = (precise - p).abs();
            assert!(err <= last_err, "error rose: {err} > {last_err}");
            last_err = err;
        }
        assert_eq!(last_err, 0);
    }

    #[test]
    fn constructor_validation() {
        assert!(BitSerialDot::new(vec![1], vec![1, 2], 8).is_err());
        assert!(BitSerialDot::new(vec![1], vec![-1], 8).is_err());
        assert!(BitSerialDot::new(vec![1], vec![256], 8).is_err());
        assert!(BitSerialDot::new(vec![1], vec![1], 0).is_err());
        assert!(BitSerialDot::new(vec![1], vec![1], 64).is_err());
    }
}
