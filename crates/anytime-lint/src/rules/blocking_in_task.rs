//! L10: OS-thread-parking calls reachable from a task poll body.
//!
//! Stage work runs as cooperative tasks on the shared work-stealing
//! runtime; the only legal ways to wait are returning
//! `TaskPoll::Pending` (with a subscribed waker) or
//! `TaskPoll::PendingUntil`. A `WaitSet::wait*`, channel `recv*`, or
//! thread `join()` inside task context parks the worker thread itself:
//! with N workers, N such tasks brown out the entire pool — the scenario
//! the ROADMAP's 100-replica target cannot tolerate. The diagnostic
//! prints the call chain from the poll root so the blocking site can be
//! traced even when it hides several calls deep.

use crate::ast::Event;
use crate::model::{is_blocking_name, Model};
use crate::Diagnostic;

/// Flags every thread-parking call site inside a task-reachable function.
pub fn check(model: &Model, out: &mut Vec<Diagnostic>) {
    let mut indices: Vec<usize> = model.reachable.keys().copied().collect();
    indices.sort_unstable();
    for idx in indices {
        let f = &model.fns[idx];
        if f.in_test {
            continue;
        }
        for ev in &f.events {
            let Event::Call {
                name,
                line,
                method,
                zero_args,
            } = ev
            else {
                continue;
            };
            let blocking =
                is_blocking_name(name) || (name == "join" && *method && *zero_args);
            if !blocking {
                continue;
            }
            out.push(Diagnostic {
                file: f.file.clone(),
                line: *line,
                rule: "l10-blocking-in-task",
                message: format!(
                    "`{name}` parks the OS thread inside task context (reachable: {}); \
                     a parked worker stalls every task on the pool — return \
                     `TaskPoll::Pending`/`PendingUntil` and arrange a wake instead",
                    model.chain_to(idx)
                ),
            });
        }
    }
}
