//! L8: lock-order cycles across the workspace.
//!
//! The model records an edge `A → B` wherever lock `B` is acquired while
//! a named guard of `A` is live — directly, or by calling a function
//! whose transitive acquire set contains `B`. Any directed cycle in that
//! graph is a deadlock an unlucky interleaving can realize across
//! `runtime.rs`/`serve.rs`/`governor.rs`/`buffer.rs`, even though each
//! file looks locally consistent. The diagnostic prints the full witness
//! cycle with the file:line of every edge so the order inversion can be
//! read off directly.

use crate::model::{lock_cycles, Model};
use crate::Diagnostic;

/// Reports one diagnostic per distinct lock-order cycle, anchored at the
/// first edge's acquisition site.
pub fn check(model: &Model, out: &mut Vec<Diagnostic>) {
    for cycle in lock_cycles(&model.lock_edges) {
        let mut witness = String::new();
        for (i, (node, file, line)) in cycle.iter().enumerate() {
            if i == 0 {
                witness.push_str(node);
            } else {
                witness.push_str(&format!(" -> {node} ({file}:{line})"));
            }
        }
        // Anchor on the first hop: the earliest acquisition that closes
        // the inversion.
        let (_, file, line) = &cycle[1];
        out.push(Diagnostic {
            file: file.clone(),
            line: *line,
            rule: "l8-lock-order",
            message: format!(
                "lock-order cycle: {witness}; two threads taking these locks in \
                 opposing order deadlock — pick one global order and drop guards \
                 before crossing files"
            ),
        });
    }
}
