//! The cross-file semantic rules (L7–L10), each a pass over the
//! workspace [`Model`](crate::model::Model). Per-file token rules (L1–L6)
//! live in the crate root; these four need the call graph, the lock-order
//! graph, or the atomic pairing table, so they run once per lint
//! invocation after every file has been parsed.

pub mod atomic_pairing;
pub mod blocking_in_task;
pub mod guard_yield;
pub mod lock_order;

use crate::model::Model;
use crate::Diagnostic;

/// Runs every semantic rule over the model.
pub fn check_all(model: &Model, out: &mut Vec<Diagnostic>) {
    guard_yield::check(model, out);
    lock_order::check(model, out);
    atomic_pairing::check(model, out);
    blocking_in_task::check(model, out);
}
