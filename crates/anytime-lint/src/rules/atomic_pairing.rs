//! L9: `Release` stores without a matching `Acquire` load (and vice
//! versa), workspace-wide.
//!
//! A `Release` write publishes nothing unless some thread performs an
//! `Acquire`-class read of the *same* atomic: the synchronizes-with edge
//! needs both ends. An unpaired end is either a leftover from a removed
//! reader/writer (the `live_runs` class of bug audited by hand in PR 5)
//! or an ordering that should be `Relaxed` with a justification. Pairing
//! is keyed by field name across the whole workspace; `SeqCst` accesses
//! and test-code accesses satisfy pairing but are never flagged
//! themselves.

use crate::model::Model;
use crate::Diagnostic;
use std::collections::HashSet;

/// Flags explicit `Release`/`AcqRel` writes on fields no one ever reads
/// with `Acquire`/`AcqRel`/`SeqCst`, and explicit `Acquire`/`AcqRel`
/// reads on fields no one ever writes with `Release`/`AcqRel`/`SeqCst`.
pub fn check(model: &Model, out: &mut Vec<Diagnostic>) {
    let mut acq_read: HashSet<&str> = HashSet::new();
    let mut rel_write: HashSet<&str> = HashSet::new();
    for site in &model.atomics {
        if site.access.acq_any {
            acq_read.insert(&site.access.field);
        }
        if site.access.rel_any {
            rel_write.insert(&site.access.field);
        }
    }
    for site in &model.atomics {
        let a = &site.access;
        if a.in_test {
            continue;
        }
        if a.explicit_rel && !acq_read.contains(a.field.as_str()) {
            out.push(Diagnostic {
                file: site.file.clone(),
                line: a.line,
                rule: "l9-atomic-pairing",
                message: format!(
                    "`Release` write to atomic field `{}` has no `Acquire`/`AcqRel`/`SeqCst` \
                     load anywhere in the workspace: nothing synchronizes with this store — \
                     pair it with an acquiring load or downgrade to `Relaxed` with a \
                     `// relaxed:` justification",
                    a.field
                ),
            });
        }
        if a.explicit_acq && !rel_write.contains(a.field.as_str()) {
            out.push(Diagnostic {
                file: site.file.clone(),
                line: a.line,
                rule: "l9-atomic-pairing",
                message: format!(
                    "`Acquire` read of atomic field `{}` has no `Release`/`AcqRel`/`SeqCst` \
                     store anywhere in the workspace: there is no release to synchronize \
                     with — pair it with a releasing store or downgrade to `Relaxed` with a \
                     `// relaxed:` justification",
                    a.field
                ),
            });
        }
    }
}
