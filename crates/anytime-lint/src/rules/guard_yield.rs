//! L7: a lock guard live across a publish/yield point in task context.
//!
//! L4 catches a guard held at a *direct* `publish*`/`emit*` call in the
//! same function. This rule closes the interprocedural gap: inside any
//! function reachable from an `RtTask`/`StageRunner` poll body, a named
//! guard must not be live at a call whose callee *transitively* reaches a
//! publication boundary. A task that yields while holding a runtime or
//! stage lock can park with the lock held; every peer task (and the
//! worker that would wake it) then blocks behind the parked owner —
//! exactly the pool-wide stall the work-stealing runtime must exclude.

use crate::ast::Event;
use crate::model::{replay_guards, Model};
use crate::Diagnostic;

/// Scans every task-reachable function body for guards live at calls into
/// the yield/publish set. Direct boundary calls are L4's finding and are
/// not re-reported here.
pub fn check(model: &Model, out: &mut Vec<Diagnostic>) {
    let mut indices: Vec<usize> = model.reachable.keys().copied().collect();
    indices.sort_unstable();
    for idx in indices {
        let f = &model.fns[idx];
        if f.in_test {
            continue;
        }
        let mut found: Vec<Diagnostic> = Vec::new();
        replay_guards(&f.events, |held, ev| {
            let Event::Call { name, line, .. } = ev else {
                return;
            };
            if crate::is_boundary_call(name) {
                return; // L4's province: same-line double reports help nobody
            }
            let yields = model
                .by_name
                .get(name)
                .into_iter()
                .flatten()
                .any(|c| model.yields.contains(c));
            if !yields {
                return;
            }
            let Some(g) = held.last() else {
                return;
            };
            let lock = g.lock.as_deref().unwrap_or("?");
            found.push(Diagnostic {
                file: f.file.clone(),
                line: *line,
                rule: "l7-guard-across-yield",
                message: format!(
                    "guard `{}` (lock `{lock}`, bound line {}) is live across a call to \
                     `{name}`, which reaches a publish/yield point; a task parked under \
                     this lock stalls every peer that needs it — drop the guard first",
                    g.name, g.line
                ),
            });
        });
        out.append(&mut found);
    }
}
