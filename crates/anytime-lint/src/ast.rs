//! Per-file symbol extraction: the first phase of the two-phase analyzer.
//!
//! The lexer ([`crate::lexer`]) gives a reliable token stream; this module
//! lifts it into the small slice of structure the cross-file rules need —
//! function items (with their `impl`/`trait` context), and an *ordered
//! event stream* per function body: brace scopes, named lock-guard
//! bindings with their lock identity, explicit `drop`s, call expressions,
//! lock-acquisition sites, and atomic field accesses with their
//! `Ordering`s. No expression grammar, no types: just enough symbols for
//! the workspace model ([`crate::model`]) to build a call graph, a
//! lock-order graph, and an atomic pairing table.
//!
//! Heuristics (documented in DESIGN.md §16): guard tracking follows L4's
//! named-`let` convention (`let g = …lock(…)…;`), lock identity is
//! `<file-stem>.<field>` (the last path segment of the locked expression),
//! and atomic calls are recognized by method name plus an `Ordering`
//! variant among the arguments.

use crate::lexer::{Lexed, Tok, Token};
use crate::FileCtx;

/// One ordered event inside a function body.
#[derive(Debug, Clone)]
pub enum Event {
    /// A `{` opening a nested scope inside the body.
    Open,
    /// The matching `}`.
    Close,
    /// `let [mut] name = …lock(…)…;` — a named guard binding. `lock` is
    /// the lock key (`<stem>.<field>`) when the locked path was
    /// extractable.
    GuardBind {
        name: String,
        lock: Option<String>,
        line: u32,
    },
    /// `drop(name)` — explicit end of a guard's liveness.
    GuardDrop { name: String },
    /// Any `lock(…)` / `lock_unpoisoned(…)` / `.lock()` site, including
    /// temporaries and the acquisitions inside guard initializers.
    Acquire { lock: String, line: u32 },
    /// A call expression `name(…)` or `.name(…)`.
    Call {
        name: String,
        line: u32,
        method: bool,
        zero_args: bool,
    },
    /// An atomic field access with at least one `Ordering` argument.
    Atomic(AtomicAccess),
}

/// One atomic access site, classified by direction and ordering.
#[derive(Debug, Clone)]
pub struct AtomicAccess {
    /// Last path segment of the accessed place (`self.state` → `state`).
    pub field: String,
    pub line: u32,
    /// The access can observe a value (load / RMW / CAS).
    pub reads: bool,
    /// The access can publish a value (store / RMW / CAS).
    pub writes: bool,
    /// A write with `Release`, `AcqRel`, or `SeqCst` ordering.
    pub rel_any: bool,
    /// A read with `Acquire`, `AcqRel`, or `SeqCst` ordering.
    pub acq_any: bool,
    /// A write with explicit `Release`/`AcqRel` (not `SeqCst`).
    pub explicit_rel: bool,
    /// A read with explicit `Acquire`/`AcqRel` (not `SeqCst`).
    pub explicit_acq: bool,
    /// Inside `#[cfg(test)]` or a test-exempt tree: satisfies pairing but
    /// is never itself flagged.
    pub in_test: bool,
}

/// One function item with its body event stream.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    pub line: u32,
    /// `Some("RtTask")` for `impl RtTask for …` methods (or the trait a
    /// default method body belongs to).
    pub trait_name: Option<String>,
    /// The `Self` type of the enclosing `impl`, for diagnostics.
    pub type_name: Option<String>,
    /// Inside `#[cfg(test)]` or defined in a test-exempt tree.
    pub in_test: bool,
    pub events: Vec<Event>,
}

/// The per-file analysis result fed to the workspace model.
#[derive(Debug, Clone, Default)]
pub struct FileAst {
    /// Workspace-relative display path.
    pub display: String,
    /// File stem (`serve.rs` → `serve`), the lock-key namespace.
    pub stem: String,
    pub fns: Vec<FnDef>,
}

const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Rust keywords (plus primitive patterns) that look like calls but are not.
fn is_keywordish(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "else"
            | "in"
            | "as"
            | "move"
            | "ref"
            | "let"
            | "mut"
            | "pub"
            | "use"
            | "mod"
            | "where"
            | "unsafe"
            | "dyn"
            | "fn"
            | "impl"
            | "trait"
            | "struct"
            | "enum"
            | "type"
            | "const"
            | "static"
            | "crate"
            | "super"
            | "self"
            | "Self"
            | "box"
            | "await"
            | "yield"
    ) || s.chars().next().is_some_and(char::is_uppercase)
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(tokens: &[Token], i: usize, c: u8) -> bool {
    matches!(tokens.get(i).map(|t| &t.kind), Some(Tok::Punct(p)) if *p == c)
}

fn is_open(tokens: &[Token], i: usize, c: u8) -> bool {
    matches!(tokens.get(i).map(|t| &t.kind), Some(Tok::Open(p)) if *p == c)
}

fn is_close(tokens: &[Token], i: usize, c: u8) -> bool {
    matches!(tokens.get(i).map(|t| &t.kind), Some(Tok::Close(p)) if *p == c)
}

/// Walks back from the token *before* a `.method` dot to the field being
/// accessed: `self.deques[w].lock()` → `deques`, `job.slot.state.store(…)`
/// → `state`.
fn field_before_dot(tokens: &[Token], mut j: usize) -> Option<String> {
    // Skip a trailing index `[…]` or call `(…)` backwards to its opener.
    for close in [b']', b')'] {
        if is_close(tokens, j, close) {
            let open = if close == b']' { b'[' } else { b'(' };
            let mut depth = 0i32;
            loop {
                match tokens.get(j).map(|t| &t.kind) {
                    Some(Tok::Close(c)) if *c == close => depth += 1,
                    Some(Tok::Open(o)) if *o == open => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j = j.checked_sub(1)?;
            }
            j = j.checked_sub(1)?;
        }
    }
    ident_at(tokens, j).map(str::to_string)
}

/// Walks forward from the first token inside `lock(…)` to the last path
/// segment of the locked place: `lock(&job.slot.state)` → `state`,
/// `lock_unpoisoned(&self.deques[w])` → `deques`.
fn field_in_args(tokens: &[Token], mut j: usize) -> Option<String> {
    while is_punct(tokens, j, b'&') || ident_at(tokens, j) == Some("mut") {
        j += 1;
    }
    let mut last: Option<String> = None;
    loop {
        match ident_at(tokens, j) {
            Some(s) => {
                last = Some(s.to_string());
                j += 1;
            }
            None => break,
        }
        if is_punct(tokens, j, b':') && is_punct(tokens, j + 1, b':') {
            j += 2;
            continue;
        }
        if is_open(tokens, j, b'[') {
            let mut depth = 0i32;
            while j < tokens.len() {
                match &tokens[j].kind {
                    Tok::Open(b'[') => depth += 1,
                    Tok::Close(b']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            j += 1;
        }
        if is_punct(tokens, j, b'.') {
            j += 1;
            continue;
        }
        break;
    }
    last
}

/// Skips a `<…>` generics group starting at `j` (which must point at `<`),
/// returning the index just past the matching `>`. `->` arrows inside
/// bounds (`F: Fn() -> T`) do not count as closers.
fn skip_generics(tokens: &[Token], mut j: usize) -> usize {
    let mut depth = 0i32;
    while j < tokens.len() {
        if is_punct(tokens, j, b'-') && is_punct(tokens, j + 1, b'>') {
            j += 2;
            continue;
        }
        if is_punct(tokens, j, b'<') {
            depth += 1;
        } else if is_punct(tokens, j, b'>') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Parses an `impl`/`trait` header starting after the keyword, returning
/// `(trait_name, type_name)` — for `impl`, the last path segment before
/// `for` and the first path's last segment after it (or the inherent type).
fn parse_impl_header(tokens: &[Token], kw: &str, mut j: usize) -> (Option<String>, Option<String>) {
    if is_punct(tokens, j, b'<') {
        j = skip_generics(tokens, j);
    }
    let mut before_for: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut seen_for = false;
    while j < tokens.len() {
        match &tokens[j].kind {
            Tok::Open(b'{') | Tok::Punct(b';') => break,
            Tok::Ident(s) if s == "for" => seen_for = true,
            Tok::Ident(s) if s == "where" => break,
            Tok::Ident(s) => {
                if seen_for {
                    if after_for.is_none() || is_punct(tokens, j.wrapping_sub(1), b':') {
                        after_for = Some(s.clone());
                    }
                } else {
                    before_for = Some(s.clone());
                }
            }
            Tok::Punct(b'<') => j = skip_generics(tokens, j) - 1,
            _ => {}
        }
        j += 1;
    }
    if kw == "trait" {
        // `trait Foo { … }`: the first ident names the trait itself.
        return (before_for, None);
    }
    if seen_for {
        (before_for, after_for)
    } else {
        (None, before_for)
    }
}

/// Builds the per-file AST from a lexed token stream. `in_test` is the
/// per-token `#[cfg(test)]` map from [`crate::cfg_test_regions`];
/// `ctx.sleep_exempt` marks whole-file test trees.
pub fn build_file_ast(lexed: &Lexed, in_test: &[bool], ctx: &FileCtx) -> FileAst {
    let toks = &lexed.tokens;
    let stem = ctx
        .display
        .rsplit('/')
        .next()
        .unwrap_or(&ctx.display)
        .trim_end_matches(".rs")
        .to_string();

    struct OpenFn {
        def: FnDef,
        depth: u32,
    }
    struct OpenImpl {
        trait_name: Option<String>,
        type_name: Option<String>,
        depth: u32,
    }

    let mut out = FileAst {
        display: ctx.display.clone(),
        stem: stem.clone(),
        fns: Vec::new(),
    };
    let mut fn_stack: Vec<OpenFn> = Vec::new();
    let mut impl_stack: Vec<OpenImpl> = Vec::new();
    // `fn name` seen; waiting for its body `{` (or a `;` declaration end).
    let mut pending_fn: Option<(String, u32, bool)> = None;
    let mut pend_delim = 0i32;
    // `impl`/`trait` header parsed; waiting for the body `{`.
    let mut pending_impl: Option<(Option<String>, Option<String>)> = None;
    // Guard bindings emitted at their statement-ending `;` so that the
    // `Acquire` inside the initializer is ordered before the bind.
    let mut pending_binds: Vec<(usize, String, Option<String>, u32)> = Vec::new();
    let mut depth = 0u32;

    let mut i = 0usize;
    while i < toks.len() {
        while let Some(pos) = pending_binds.iter().position(|(at, ..)| *at <= i) {
            let (_, name, lock, line) = pending_binds.remove(pos);
            if let Some(f) = fn_stack.last_mut() {
                f.def.events.push(Event::GuardBind { name, lock, line });
            }
        }
        let tok = &toks[i];
        match &tok.kind {
            Tok::Ident(kw) if (kw == "impl" || kw == "trait") && fn_stack.is_empty() => {
                pending_impl = Some(parse_impl_header(toks, kw, i + 1));
            }
            Tok::Ident(kw) if kw == "fn" => {
                if let Some(name) = ident_at(toks, i + 1) {
                    let tested = in_test.get(i).copied().unwrap_or(false) || ctx.sleep_exempt;
                    pending_fn = Some((name.to_string(), tok.line, tested));
                    pend_delim = 0;
                }
            }
            Tok::Open(b'{') => {
                if pending_fn.is_some() && pend_delim == 0 {
                    let (name, line, tested) = pending_fn.take().expect("checked above");
                    let (trait_name, type_name) = impl_stack
                        .last()
                        .map(|im| (im.trait_name.clone(), im.type_name.clone()))
                        .unwrap_or((None, None));
                    fn_stack.push(OpenFn {
                        def: FnDef {
                            name,
                            line,
                            trait_name,
                            type_name,
                            in_test: tested,
                            events: Vec::new(),
                        },
                        depth,
                    });
                } else if pending_impl.is_some() && fn_stack.is_empty() {
                    let (trait_name, type_name) = pending_impl.take().expect("checked above");
                    impl_stack.push(OpenImpl {
                        trait_name,
                        type_name,
                        depth,
                    });
                } else if let Some(f) = fn_stack.last_mut() {
                    f.def.events.push(Event::Open);
                }
                depth += 1;
            }
            Tok::Open(_) => {
                if pending_fn.is_some() {
                    pend_delim += 1;
                }
            }
            Tok::Close(b'}') => {
                depth = depth.saturating_sub(1);
                if fn_stack.last().is_some_and(|f| f.depth == depth) {
                    let done = fn_stack.pop().expect("checked above");
                    out.fns.push(done.def);
                } else if impl_stack.last().is_some_and(|im| im.depth == depth) {
                    impl_stack.pop();
                } else if let Some(f) = fn_stack.last_mut() {
                    f.def.events.push(Event::Close);
                }
            }
            Tok::Close(_) => {
                if pending_fn.is_some() {
                    pend_delim -= 1;
                }
            }
            Tok::Punct(b';') => {
                if pending_fn.is_some() && pend_delim == 0 {
                    pending_fn = None; // trait method declaration, no body
                }
                if pending_impl.is_some() {
                    pending_impl = None; // `impl Trait for Type;` style marker
                }
            }
            Tok::Ident(id) if id == "let" && !fn_stack.is_empty() => {
                scan_let(toks, i, &stem, &mut pending_binds);
            }
            Tok::Ident(id) if id == "drop" && is_open(toks, i + 1, b'(') => {
                if let Some(name) = ident_at(toks, i + 2) {
                    if is_close(toks, i + 3, b')') {
                        if let Some(f) = fn_stack.last_mut() {
                            f.def.events.push(Event::GuardDrop {
                                name: name.to_string(),
                            });
                        }
                    }
                }
            }
            Tok::Ident(id)
                if (id == "lock" || id == "lock_unpoisoned")
                    && is_open(toks, i + 1, b'(')
                    && ident_at(toks, i.wrapping_sub(1)) != Some("fn")
                    && !fn_stack.is_empty() =>
            {
                let field = if is_punct(toks, i.wrapping_sub(1), b'.') {
                    field_before_dot(toks, i.wrapping_sub(2))
                } else {
                    field_in_args(toks, i + 2)
                };
                if let (Some(field), Some(f)) = (field, fn_stack.last_mut()) {
                    f.def.events.push(Event::Acquire {
                        lock: format!("{stem}.{field}"),
                        line: tok.line,
                    });
                }
            }
            Tok::Ident(id)
                if id == "spawn"
                    && is_open(toks, i + 1, b'(')
                    && ident_at(toks, i.wrapping_sub(1)) != Some("fn") =>
            {
                // A thread-spawn closure runs on its own OS thread: its body
                // is *not* part of the enclosing function's task context, its
                // lock scopes are not the caller's, and its blocking waits
                // are the thread's own business (L6 audits the spawn itself).
                // Skip the entire argument region.
                let mut depth = 0i32;
                let mut j = i + 1;
                while j < toks.len() {
                    match &toks[j].kind {
                        Tok::Open(_) => depth += 1,
                        Tok::Close(_) => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
            Tok::Ident(id)
                if ATOMIC_METHODS.contains(&id.as_str())
                    && is_punct(toks, i.wrapping_sub(1), b'.')
                    && is_open(toks, i + 1, b'(')
                    && !fn_stack.is_empty() =>
            {
                if let Some(access) = classify_atomic(toks, i, in_test, ctx) {
                    if let Some(f) = fn_stack.last_mut() {
                        f.def.events.push(Event::Atomic(access));
                    }
                }
            }
            Tok::Ident(id)
                if is_open(toks, i + 1, b'(')
                    && !is_keywordish(id)
                    && ident_at(toks, i.wrapping_sub(1)) != Some("fn")
                    && !fn_stack.is_empty() =>
            {
                if let Some(f) = fn_stack.last_mut() {
                    f.def.events.push(Event::Call {
                        name: id.clone(),
                        line: tok.line,
                        method: is_punct(toks, i.wrapping_sub(1), b'.'),
                        zero_args: is_close(toks, i + 2, b')'),
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
    // Unterminated bodies (malformed source) still surface their fns.
    while let Some(done) = fn_stack.pop() {
        out.fns.push(done.def);
    }
    out
}

/// Scans a `let` statement's initializer for a *tail-position* lock call;
/// when found, queues a guard binding to be emitted at the statement's
/// `;`.
///
/// Tighter than L4's heuristic, deliberately: the binding is a guard only
/// when the lock call sits at depth 0 of the initializer (so
/// `let n = { let g = lock(…); … };` and `let x = f(lock(…));` do not
/// bind) and nothing but `unwrap`/`expect`/`unwrap_or_else`/`?` follows
/// it (so `let v = lock(…).clone();` — a value copied out of a
/// *temporary* guard — does not bind either). Cross-file rules fire on
/// held guards anywhere, so false bindings here would be false positives
/// everywhere.
fn scan_let(
    toks: &[Token],
    i: usize,
    stem: &str,
    pending_binds: &mut Vec<(usize, String, Option<String>, u32)>,
) {
    let mut j = i + 1;
    if ident_at(toks, j) == Some("mut") {
        j += 1;
    }
    let Some(name) = ident_at(toks, j) else {
        return; // tuple/struct destructuring: untrackable
    };
    if name.chars().next().is_some_and(char::is_uppercase) {
        return; // `let Some(x) = …` / `let Ok(g) = …`: pattern, not a binding
    }
    let name = name.to_string();
    let mut depth = 0i32;
    let mut k = j + 1;
    let mut lock_site: Option<usize> = None;
    while k < toks.len() {
        match &toks[k].kind {
            Tok::Open(_) => depth += 1,
            Tok::Close(_) => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            Tok::Punct(b';') if depth == 0 => break,
            Tok::Ident(s)
                if (s == "lock" || s == "lock_unpoisoned")
                    && depth == 0
                    && is_open(toks, k + 1, b'(')
                    && lock_site.is_none() =>
            {
                lock_site = Some(k);
            }
            _ => {}
        }
        k += 1;
    }
    let Some(site) = lock_site else {
        return;
    };
    if !tail_is_guard(toks, site) {
        return;
    }
    let field = if is_punct(toks, site.wrapping_sub(1), b'.') {
        field_before_dot(toks, site.wrapping_sub(2))
    } else {
        field_in_args(toks, site + 2)
    };
    let lock = field.map(|f| format!("{stem}.{f}"));
    pending_binds.push((k, name, lock, toks[i].line));
}

/// Returns the index just past the delimiter group opening at `open`.
fn skip_group(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match &toks[j].kind {
            Tok::Open(_) => depth += 1,
            Tok::Close(_) => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// `true` when the expression after the lock call at `site` ends the
/// statement, modulo error-handling adaptors — i.e. the binding really
/// holds the guard rather than a value extracted from a temporary.
fn tail_is_guard(toks: &[Token], site: usize) -> bool {
    let mut j = skip_group(toks, site + 1);
    loop {
        if is_punct(toks, j, b'?') {
            j += 1;
            continue;
        }
        if is_punct(toks, j, b'.')
            && matches!(
                ident_at(toks, j + 1),
                Some("unwrap" | "expect" | "unwrap_or_else")
            )
            && is_open(toks, j + 2, b'(')
        {
            j = skip_group(toks, j + 2);
            continue;
        }
        break;
    }
    is_punct(toks, j, b';')
}

/// Classifies an atomic method call at token `i`, returning `None` when no
/// `Ordering` variant appears among the arguments (i.e. not an atomic).
fn classify_atomic(
    toks: &[Token],
    i: usize,
    in_test: &[bool],
    ctx: &FileCtx,
) -> Option<AtomicAccess> {
    let method = ident_at(toks, i)?;
    let mut orderings: Vec<&str> = Vec::new();
    let mut depth = 0i32;
    let mut j = i + 1;
    while j < toks.len() {
        match &toks[j].kind {
            Tok::Open(_) => depth += 1,
            Tok::Close(_) => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Ident(s) if ORDERINGS.contains(&s.as_str()) => orderings.push(s.as_str()),
            _ => {}
        }
        j += 1;
    }
    if orderings.is_empty() {
        return None;
    }
    let field = field_before_dot(toks, i.wrapping_sub(2))?;
    let reads = method != "store";
    let writes = method != "load";
    let has = |o: &str| orderings.contains(&o);
    Some(AtomicAccess {
        field,
        line: toks[i].line,
        reads,
        writes,
        rel_any: writes && (has("Release") || has("AcqRel") || has("SeqCst")),
        acq_any: reads && (has("Acquire") || has("AcqRel") || has("SeqCst")),
        explicit_rel: writes && (has("Release") || has("AcqRel")),
        explicit_acq: reads && (has("Acquire") || has("AcqRel")),
        in_test: in_test.get(i).copied().unwrap_or(false) || ctx.sleep_exempt,
    })
}
