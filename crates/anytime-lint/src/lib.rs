#![forbid(unsafe_code)]

//! `anytime-lint`: the workspace's own static-analysis pass.
//!
//! The automaton's concurrency guarantees (Property 1 purity, Property 2
//! monotone accuracy, Property 3 atomic snapshot publication) rest on a
//! small set of hand-maintained disciplines: all blocking goes through the
//! epoch [`WaitSet`] protocol in `notify.rs`, no polled sleeps, every
//! `Ordering::Relaxed` is a reviewed decision, and no lock is held across a
//! publication boundary. This crate machine-checks those disciplines with a
//! hand-rolled lexer ([`lexer`]) and a block-scope tracker — zero external
//! dependencies, same style as `anytime-bench`'s hand-rolled trace parsers.
//!
//! [`WaitSet`]: ../anytime_core/index.html
//!
//! # Rule catalog
//!
//! | id | checks |
//! |----|--------|
//! | `l1-condvar` | `Condvar` referenced outside `anytime-core/src/notify.rs`. Raw condvar waits reintroduce the lost-wakeup bugs the epoch protocol removed. |
//! | `l2-sleep` | `thread::sleep` outside `#[cfg(test)]` scopes and `tests/`, `benches/`, `examples/` trees. Sleeps are polling quanta; blocking must be event-driven. |
//! | `l3-relaxed` | `Ordering::Relaxed` without an adjacent `// relaxed:` justification comment (same line, the line above, or a contiguous run of justified `Relaxed` lines). |
//! | `l4-guard-across-publish` | a named `MutexGuard` binding (`let g = ….lock()` / `lock_unpoisoned(…)` / `lock(…)`) still live at a call to `publish*` / `emit*` / `seal_degraded` / `callback`. Publication must happen after the state lock is dropped, or readers can block on a publisher. |
//! | `l5-forbid-unsafe` | workspace crate roots (`src/lib.rs`, `src/main.rs`) missing `#![forbid(unsafe_code)]`. |
//! | `l6-no-raw-spawn` | raw OS-thread creation (`thread::spawn`, `Builder…spawn(…)`, `scope.spawn(…)`) outside `#[cfg(test)]` scopes and `tests/`/`benches/`/`examples/` trees. Stage work runs as tasks on the shared work-stealing runtime; every standing thread (runtime workers, supervisor watchdog, governor, replica workers) is an audited suppression. |
//! | `l7-guard-across-yield` | *(cross-file)* a named guard live at a call whose callee transitively reaches a publish/yield boundary, inside any function reachable from an `RtTask`/`StageRunner` poll body. Closes L4's interprocedural gap. |
//! | `l8-lock-order` | *(cross-file)* a cycle in the workspace lock-acquisition-order graph (lock B taken — directly or via a call — while a guard of A is held, and elsewhere A under B). The diagnostic prints the witness cycle with file:line per edge. |
//! | `l9-atomic-pairing` | *(cross-file)* an explicit `Release` write on an atomic field with no `Acquire`/`AcqRel`/`SeqCst` load anywhere in the workspace, and vice versa. `SeqCst` and test-code accesses satisfy pairing but are never flagged. |
//! | `l10-blocking-in-task` | *(cross-file)* an OS-thread-parking call (`WaitSet::wait*`, channel `recv*`, zero-arg `.join()`, `park*`) inside a function reachable from a task poll body; tasks must return `TaskPoll::Pending`/`PendingUntil` instead. |
//!
//! L1–L6 are per-file token rules; L7–L10 run on a two-phase
//! representation: [`ast`] extracts per-file symbols and body events,
//! [`model`] assembles the cross-file call graph / lock graph / atomic
//! table, and [`rules`] walks them. See DESIGN.md §16 for the analysis
//! limits.
//!
//! # Suppressions
//!
//! A violation is suppressed by a plain (non-doc) comment on the same line
//! or the line directly above:
//!
//! ```text
//! // lint: allow(l1-condvar) -- predicate is re-checked under the state mutex
//! ```
//!
//! The ` -- <reason>` part is mandatory; a suppression that matches no
//! violation, names an unknown rule, or omits its reason is itself reported
//! (rule `lint-allow`), so stale allows cannot accumulate.

pub mod ast;
pub mod lexer;
pub mod model;
pub mod rules;

use lexer::{Comment, Lexed, Tok, Token};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// All valid rule identifiers, in catalog order.
pub const RULES: [&str; 10] = [
    "l1-condvar",
    "l2-sleep",
    "l3-relaxed",
    "l4-guard-across-publish",
    "l5-forbid-unsafe",
    "l6-no-raw-spawn",
    "l7-guard-across-yield",
    "l8-lock-order",
    "l9-atomic-pairing",
    "l10-blocking-in-task",
];

/// One diagnostic: a rule violation (or a bad suppression) at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (or the display path the caller supplied).
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule identifier from [`RULES`], or `lint-allow` for suppression
    /// hygiene findings.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Per-file lint context, derived from the file's workspace-relative path.
#[derive(Debug, Clone, Default)]
pub struct FileCtx {
    /// Display path attached to diagnostics.
    pub display: String,
    /// `true` for `crates/anytime-core/src/notify.rs` — the one blessed
    /// home of raw condvars (L1).
    pub is_notify: bool,
    /// `true` under `tests/`, `benches/`, or `examples/` trees (L2).
    pub sleep_exempt: bool,
    /// `true` for `src/lib.rs` / `src/main.rs` crate roots (L5).
    pub crate_root: bool,
}

impl FileCtx {
    /// Derives the context from a workspace-relative path.
    pub fn from_rel_path(rel: &str) -> Self {
        let norm = rel.replace('\\', "/");
        let components: Vec<&str> = norm.split('/').collect();
        FileCtx {
            display: norm.clone(),
            is_notify: norm.ends_with("anytime-core/src/notify.rs"),
            sleep_exempt: components
                .iter()
                .any(|c| matches!(*c, "tests" | "benches" | "examples")),
            crate_root: norm.ends_with("src/lib.rs") || norm.ends_with("src/main.rs"),
        }
    }
}

/// One source file queued for a multi-file lint run.
#[derive(Debug, Clone)]
pub struct SourceUnit {
    pub ctx: FileCtx,
    pub src: String,
}

/// Lints a set of files as one unit: per-file token rules (L1–L6) run on
/// each file, then the cross-file model is built over *all* of them and
/// the semantic rules (L7–L10) run once, so lock-order cycles and atomic
/// pairings spanning files are visible. Suppressions apply uniformly to
/// both phases. Pure: no I/O, deterministic output order (path, line,
/// rule).
pub fn lint_units(units: &[SourceUnit]) -> Vec<Diagnostic> {
    let mut lexed_all: Vec<Lexed> = Vec::with_capacity(units.len());
    let mut raw_all: Vec<Vec<Diagnostic>> = Vec::with_capacity(units.len());
    let mut asts: Vec<ast::FileAst> = Vec::with_capacity(units.len());
    for u in units {
        let lexed = lexer::lex(&u.src);
        let in_test = cfg_test_regions(&lexed.tokens);
        let mut raw: Vec<Diagnostic> = Vec::new();
        rule_l1_condvar(&lexed.tokens, &u.ctx, &mut raw);
        rule_l2_sleep(&lexed.tokens, &in_test, &u.ctx, &mut raw);
        rule_l3_relaxed(&lexed, &u.ctx, &mut raw);
        rule_l4_guard(&lexed.tokens, &u.ctx, &mut raw);
        rule_l5_forbid(&lexed.tokens, &u.ctx, &mut raw);
        rule_l6_spawn(&lexed.tokens, &in_test, &u.ctx, &mut raw);
        asts.push(ast::build_file_ast(&lexed, &in_test, &u.ctx));
        lexed_all.push(lexed);
        raw_all.push(raw);
    }

    let workspace = model::Model::build(&asts);
    let mut semantic: Vec<Diagnostic> = Vec::new();
    rules::check_all(&workspace, &mut semantic);
    let mut by_file: HashMap<String, Vec<Diagnostic>> = HashMap::new();
    for d in semantic {
        by_file.entry(d.file.clone()).or_default().push(d);
    }

    let mut all: Vec<Diagnostic> = Vec::new();
    for (i, u) in units.iter().enumerate() {
        let mut raw = std::mem::take(&mut raw_all[i]);
        raw.extend(by_file.remove(&u.ctx.display).unwrap_or_default());
        all.extend(apply_suppressions(raw, &lexed_all[i].comments, &u.ctx));
    }
    all.sort_by(|a, b| (a.file.clone(), a.line, a.rule).cmp(&(b.file.clone(), b.line, b.rule)));
    all
}

/// Lints one file's source text in isolation (the cross-file rules see a
/// single-file model). Pure: no I/O, deterministic output order
/// (ascending line, then rule id).
pub fn lint_source(src: &str, ctx: &FileCtx) -> Vec<Diagnostic> {
    lint_units(&[SourceUnit {
        ctx: ctx.clone(),
        src: src.to_string(),
    }])
}

/// Marks, for every token, whether it sits inside a `#[cfg(test)]` (or
/// `#[cfg(all(test, …))]`) item body. `#[cfg(not(test))]` does not count.
fn cfg_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut brace_depth: u32 = 0;
    let mut exempt_stack: Vec<u32> = Vec::new();
    let mut pending_attr = false;
    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i].kind {
            Tok::Punct(b'#') => {
                // Outer attribute `#[…]` (inner `#![…]` never carries
                // cfg(test) in practice; skip its brackets all the same).
                let mut j = i + 1;
                if matches!(tokens.get(j).map(|t| &t.kind), Some(Tok::Punct(b'!'))) {
                    j += 1;
                }
                if matches!(tokens.get(j).map(|t| &t.kind), Some(Tok::Open(b'['))) {
                    let (idents, end) = attr_idents(tokens, j);
                    let is_cfg_test = idents.iter().any(|s| s == "cfg")
                        && idents.iter().any(|s| s == "test")
                        && !idents.iter().any(|s| s == "not");
                    if is_cfg_test {
                        pending_attr = true;
                    }
                    for slot in in_test.iter_mut().take(end + 1).skip(i) {
                        *slot = !exempt_stack.is_empty();
                    }
                    i = end + 1;
                    continue;
                }
            }
            Tok::Open(b'{') => {
                in_test[i] = !exempt_stack.is_empty();
                if pending_attr {
                    exempt_stack.push(brace_depth);
                    pending_attr = false;
                }
                brace_depth += 1;
                i += 1;
                continue;
            }
            Tok::Close(b'}') => {
                brace_depth = brace_depth.saturating_sub(1);
                if exempt_stack.last() == Some(&brace_depth) {
                    exempt_stack.pop();
                }
                in_test[i] = !exempt_stack.is_empty();
                i += 1;
                continue;
            }
            Tok::Punct(b';') => {
                // `#[cfg(test)] use …;` — the attribute governs a bodiless
                // item; it must not leak onto the next block.
                in_test[i] = !exempt_stack.is_empty();
                pending_attr = false;
                i += 1;
                continue;
            }
            _ => {}
        }
        in_test[i] = !exempt_stack.is_empty();
        i += 1;
    }
    in_test
}

/// Collects the identifiers inside the attribute whose `[` is at `open`,
/// returning them with the index of the matching `]`.
fn attr_idents(tokens: &[Token], open: usize) -> (Vec<String>, usize) {
    let mut depth = 0i32;
    let mut idents = Vec::new();
    let mut i = open;
    while i < tokens.len() {
        match &tokens[i].kind {
            Tok::Open(b'[') => depth += 1,
            Tok::Close(b']') => {
                depth -= 1;
                if depth == 0 {
                    return (idents, i);
                }
            }
            Tok::Ident(s) => idents.push(s.clone()),
            _ => {}
        }
        i += 1;
    }
    (idents, tokens.len().saturating_sub(1))
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(tokens: &[Token], i: usize, c: u8) -> bool {
    matches!(tokens.get(i).map(|t| &t.kind), Some(Tok::Punct(p)) if *p == c)
}

fn is_open(tokens: &[Token], i: usize, c: u8) -> bool {
    matches!(tokens.get(i).map(|t| &t.kind), Some(Tok::Open(p)) if *p == c)
}

/// L1: `Condvar` referenced outside `notify.rs`.
fn rule_l1_condvar(tokens: &[Token], ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if ctx.is_notify {
        return;
    }
    for (i, tok) in tokens.iter().enumerate() {
        if ident_at(tokens, i) == Some("Condvar") {
            out.push(Diagnostic {
                file: ctx.display.clone(),
                line: tok.line,
                rule: "l1-condvar",
                message: "`Condvar` outside notify.rs: raw condvar waits risk lost wakeups; \
                          block through the epoch WaitSet protocol instead"
                    .into(),
            });
        }
    }
}

/// L2: `thread::sleep` outside test/bench/example code.
fn rule_l2_sleep(tokens: &[Token], in_test: &[bool], ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if ctx.sleep_exempt {
        return;
    }
    for i in 0..tokens.len() {
        if ident_at(tokens, i) == Some("thread")
            && is_punct(tokens, i + 1, b':')
            && is_punct(tokens, i + 2, b':')
            && ident_at(tokens, i + 3) == Some("sleep")
            && !in_test[i + 3]
        {
            out.push(Diagnostic {
                file: ctx.display.clone(),
                line: tokens[i + 3].line,
                rule: "l2-sleep",
                message: "`thread::sleep` outside #[cfg(test)]/bench code: sleeps are polling \
                          quanta; wait on a WaitSet (or justify with a suppression)"
                    .into(),
            });
        }
    }
}

/// L3: every `Ordering::Relaxed` needs an adjacent `// relaxed:` comment.
fn rule_l3_relaxed(lexed: &Lexed, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    use std::collections::BTreeSet;
    // Lines with a plain-comment `relaxed:` justification.
    let mut justified_comment: BTreeSet<u32> = BTreeSet::new();
    for c in &lexed.comments {
        if !c.doc && c.text.contains("relaxed:") {
            justified_comment.insert(c.line);
        }
    }
    // Lines containing a `Relaxed` token (the lexer already guarantees
    // these are code, not prose).
    let mut site_lines: BTreeSet<u32> = BTreeSet::new();
    let mut sites: Vec<u32> = Vec::new();
    for (i, tok) in lexed.tokens.iter().enumerate() {
        if ident_at(&lexed.tokens, i) == Some("Relaxed") {
            site_lines.insert(tok.line);
            sites.push(tok.line);
        }
    }
    // A line is justified if it (or the line above) carries the comment, or
    // if it directly continues a justified run of `Relaxed` lines — one
    // comment may head a contiguous block of relaxed counter loads.
    let mut justified: BTreeSet<u32> = BTreeSet::new();
    for &line in &site_lines {
        let direct = justified_comment.contains(&line)
            || (line >= 1 && justified_comment.contains(&(line - 1)));
        let chained =
            line >= 1 && site_lines.contains(&(line - 1)) && justified.contains(&(line - 1));
        if direct || chained {
            justified.insert(line);
        }
    }
    for line in sites {
        if !justified.contains(&line) {
            out.push(Diagnostic {
                file: ctx.display.clone(),
                line,
                rule: "l3-relaxed",
                message: "`Ordering::Relaxed` without an adjacent `// relaxed:` justification \
                          comment"
                    .into(),
            });
        }
    }
}

/// Names that constitute a publication/callback boundary for L4.
fn is_boundary_call(name: &str) -> bool {
    (name.starts_with("publish") && !name.starts_with("published"))
        || name == "emit"
        || name == "emit_with"
        || name == "seal_degraded"
        || name == "callback"
}

/// L4: a named guard binding live at a publish/emit/callback call.
///
/// Block-scope heuristic: tracks `let [mut] NAME = …lock(…)…;` bindings
/// (`.lock(`, `lock(`, `lock_unpoisoned(`) per brace scope; liveness ends
/// at `drop(NAME)`, a rebinding of `NAME` in the same scope, or scope exit.
fn rule_l4_guard(tokens: &[Token], ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    #[derive(Debug)]
    struct Guard {
        name: String,
        line: u32,
    }
    let mut frames: Vec<Vec<Guard>> = vec![Vec::new()];
    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i].kind {
            Tok::Open(b'{') => frames.push(Vec::new()),
            Tok::Close(b'}') if frames.len() > 1 => {
                frames.pop();
            }
            Tok::Ident(id) if id == "let" => {
                let mut j = i + 1;
                if ident_at(tokens, j) == Some("mut") {
                    j += 1;
                }
                if let Some(name) = ident_at(tokens, j) {
                    let name = name.to_string();
                    // Scan the initializer to the statement-ending `;` at
                    // this delimiter depth, looking for a lock call.
                    let mut depth = 0i32;
                    let mut k = j + 1;
                    let mut is_lock = false;
                    while k < tokens.len() {
                        match &tokens[k].kind {
                            Tok::Open(_) => depth += 1,
                            Tok::Close(_) => {
                                if depth == 0 {
                                    break; // malformed / end of enclosing block
                                }
                                depth -= 1;
                            }
                            Tok::Punct(b';') if depth == 0 => break,
                            Tok::Ident(s)
                                if (s == "lock" || s == "lock_unpoisoned")
                                    && is_open(tokens, k + 1, b'(') =>
                            {
                                is_lock = true;
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    if let Some(frame) = frames.last_mut() {
                        frame.retain(|g| g.name != name);
                        if is_lock {
                            frame.push(Guard {
                                name,
                                line: tokens[i].line,
                            });
                        }
                    }
                }
            }
            Tok::Ident(id) if id == "drop" && is_open(tokens, i + 1, b'(') => {
                if let Some(name) = ident_at(tokens, i + 2) {
                    if matches!(tokens.get(i + 3).map(|t| &t.kind), Some(Tok::Close(b')'))) {
                        for frame in frames.iter_mut().rev() {
                            if let Some(pos) = frame.iter().position(|g| g.name == name) {
                                frame.remove(pos);
                                break;
                            }
                        }
                    }
                }
            }
            Tok::Ident(id)
                if is_boundary_call(id)
                    && is_open(tokens, i + 1, b'(')
                    && ident_at(tokens, i.wrapping_sub(1)) != Some("fn") =>
            {
                if let Some(guard) = frames.iter().rev().flat_map(|f| f.iter().rev()).next() {
                    out.push(Diagnostic {
                        file: ctx.display.clone(),
                        line: tokens[i].line,
                        rule: "l4-guard-across-publish",
                        message: format!(
                            "`{id}` called while guard `{}` (bound line {}) is held: \
                             drop the lock before publishing",
                            guard.name, guard.line
                        ),
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// L5: crate roots must carry `#![forbid(unsafe_code)]`.
fn rule_l5_forbid(tokens: &[Token], ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !ctx.crate_root {
        return;
    }
    for i in 0..tokens.len() {
        if is_punct(tokens, i, b'#')
            && is_punct(tokens, i + 1, b'!')
            && is_open(tokens, i + 2, b'[')
            && ident_at(tokens, i + 3) == Some("forbid")
            && is_open(tokens, i + 4, b'(')
            && ident_at(tokens, i + 5) == Some("unsafe_code")
        {
            return;
        }
    }
    out.push(Diagnostic {
        file: ctx.display.clone(),
        line: 1,
        rule: "l5-forbid-unsafe",
        message: "crate root missing `#![forbid(unsafe_code)]`".into(),
    });
}

/// L6: raw OS-thread creation outside test code.
///
/// Flags `spawn(` call sites reached as `thread::spawn(…)` or as a method
/// call `….spawn(…)` (thread `Builder` chains, scoped-thread handles).
/// Stage work belongs on the shared task runtime; the few standing
/// control-plane threads the crate keeps (runtime workers, supervisor
/// watchdog, governor, serve replica workers, parallel-map compute
/// workers) each carry an audited suppression naming why a thread is the
/// right tool there.
fn rule_l6_spawn(tokens: &[Token], in_test: &[bool], ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if ctx.sleep_exempt {
        return;
    }
    for i in 0..tokens.len() {
        if ident_at(tokens, i) != Some("spawn") || !is_open(tokens, i + 1, b'(') || in_test[i] {
            continue;
        }
        // `fn spawn(` is a definition, not a call site.
        if i >= 1 && ident_at(tokens, i - 1) == Some("fn") {
            continue;
        }
        let method_call = i >= 1 && is_punct(tokens, i - 1, b'.');
        let thread_path = i >= 3
            && is_punct(tokens, i - 1, b':')
            && is_punct(tokens, i - 2, b':')
            && ident_at(tokens, i - 3) == Some("thread");
        if method_call || thread_path {
            out.push(Diagnostic {
                file: ctx.display.clone(),
                line: tokens[i].line,
                rule: "l6-no-raw-spawn",
                message: "raw thread spawn: stage work must be scheduled on the shared task \
                          runtime; a standing control-plane thread needs an audited suppression"
                    .into(),
            });
        }
    }
}

/// One parsed `// lint: allow(…) -- reason` directive.
struct Allow {
    line: u32,
    rules: Vec<String>,
    used: bool,
}

/// Applies `// lint: allow(rule) -- reason` suppressions and reports
/// suppression hygiene problems (malformed, unknown rule, unused).
fn apply_suppressions(
    raw: Vec<Diagnostic>,
    comments: &[Comment],
    ctx: &FileCtx,
) -> Vec<Diagnostic> {
    let mut allows: Vec<Allow> = Vec::new();
    let mut hygiene: Vec<Diagnostic> = Vec::new();
    for c in comments {
        if c.doc {
            continue;
        }
        let Some(pos) = c.text.find("lint:") else {
            continue;
        };
        let rest = c.text[pos + "lint:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            hygiene.push(Diagnostic {
                file: ctx.display.clone(),
                line: c.line,
                rule: "lint-allow",
                message: "malformed lint directive: expected `lint: allow(<rule>) -- <reason>`"
                    .into(),
            });
            continue;
        };
        let Some(close) = args.find(')') else {
            hygiene.push(Diagnostic {
                file: ctx.display.clone(),
                line: c.line,
                rule: "lint-allow",
                message: "malformed lint directive: missing `)`".into(),
            });
            continue;
        };
        let rules: Vec<String> = args[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let after = args[close + 1..].trim_start();
        let reason_ok = after
            .strip_prefix("--")
            .is_some_and(|r| !r.trim().is_empty());
        if rules.is_empty() || !reason_ok {
            hygiene.push(Diagnostic {
                file: ctx.display.clone(),
                line: c.line,
                rule: "lint-allow",
                message: "suppression needs a rule and a reason: \
                          `lint: allow(<rule>) -- <reason>`"
                    .into(),
            });
            continue;
        }
        let mut valid = true;
        for r in &rules {
            if !RULES.contains(&r.as_str()) {
                hygiene.push(Diagnostic {
                    file: ctx.display.clone(),
                    line: c.line,
                    rule: "lint-allow",
                    message: format!(
                        "unknown rule `{r}` in suppression (known: {})",
                        RULES.join(", ")
                    ),
                });
                valid = false;
            }
        }
        if valid {
            allows.push(Allow {
                line: c.line,
                rules,
                used: false,
            });
        }
    }

    // A suppression on line L covers violations on L (trailing comment) and
    // L+1 (comment directly above the violating line).
    let mut kept: Vec<Diagnostic> = Vec::new();
    for d in raw {
        let mut suppressed = false;
        for a in allows.iter_mut() {
            if (a.line == d.line || a.line + 1 == d.line) && a.rules.iter().any(|r| r == d.rule) {
                a.used = true;
                suppressed = true;
            }
        }
        if !suppressed {
            kept.push(d);
        }
    }
    for a in &allows {
        if !a.used {
            hygiene.push(Diagnostic {
                file: ctx.display.clone(),
                line: a.line,
                rule: "lint-allow",
                message: format!(
                    "suppression for `{}` matched no violation: remove it",
                    a.rules.join(", ")
                ),
            });
        }
    }
    kept.extend(hygiene);
    kept.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    kept
}

/// Lints a file on disk, deriving the context from `rel` (its path relative
/// to the workspace root).
///
/// # Errors
///
/// Returns a description of any I/O failure.
pub fn lint_file(path: &Path, rel: &str) -> Result<Vec<Diagnostic>, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(lint_source(&src, &FileCtx::from_rel_path(rel)))
}

/// Enumerates the workspace's lintable `.rs` files: every member crate's
/// `src/`, `tests/`, `benches/`, and `examples/` trees (members are the
/// root package plus `crates/*` and `vendor/*`), skipping `target/` and
/// lint-fixture directories. Paths are returned workspace-relative, sorted.
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut members: Vec<PathBuf> = vec![root.to_path_buf()];
    for group in ["crates", "vendor"] {
        let dir = root.join(group);
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for e in entries.flatten() {
                let p = e.path();
                if p.join("Cargo.toml").is_file() {
                    members.push(p);
                }
            }
        }
    }
    let mut files = Vec::new();
    for m in members {
        for sub in ["src", "tests", "benches", "examples"] {
            collect_rs(&m.join(sub), &mut files);
        }
    }
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .filter_map(|f| f.strip_prefix(root).ok().map(Path::to_path_buf))
        .collect();
    rel.sort();
    rel.dedup();
    rel
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if p.is_dir() {
            if name != "target" && name != "fixtures" {
                collect_rs(&p, out);
            }
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
}

/// Reads `rels` (workspace-relative paths) under `root` and lints them as
/// one unit, so the cross-file rules see the whole set.
///
/// # Errors
///
/// Returns the first I/O failure encountered.
pub fn lint_paths(root: &Path, rels: &[String]) -> Result<(Vec<Diagnostic>, usize), String> {
    let mut units = Vec::with_capacity(rels.len());
    for rel in rels {
        let path = root.join(rel);
        let src =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        units.push(SourceUnit {
            ctx: FileCtx::from_rel_path(rel),
            src,
        });
    }
    Ok((lint_units(&units), rels.len()))
}

/// Renders diagnostics as a single JSON object (hand-rolled, matching the
/// crate's zero-dependency style). Stable field order; diagnostics keep
/// the sorted (path, line, rule) order of the lint pass. This is the
/// `--format json` output of the CLI, golden-tested alongside the human
/// format.
#[must_use]
pub fn render_json(diags: &[Diagnostic], scanned: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scanned\": {scanned},\n"));
    out.push_str(&format!("  \"violations\": {},\n", diags.len()));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.file),
            d.line,
            json_escape(d.rule),
            json_escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Lints the whole workspace rooted at `root`.
///
/// # Errors
///
/// Returns the first I/O failure encountered.
pub fn lint_workspace(root: &Path) -> Result<(Vec<Diagnostic>, usize), String> {
    let rels: Vec<String> = workspace_files(root)
        .iter()
        .map(|rel| rel.to_string_lossy().replace('\\', "/"))
        .collect();
    lint_paths(root, &rels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(name: &str) -> FileCtx {
        FileCtx {
            display: name.to_string(),
            ..FileCtx::default()
        }
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn l1_flags_condvar_outside_notify() {
        let src = "use std::sync::Condvar;\n";
        let d = lint_source(src, &ctx("a.rs"));
        assert_eq!(rules_of(&d), vec!["l1-condvar"]);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn l1_permits_notify_rs() {
        let mut c = ctx("crates/anytime-core/src/notify.rs");
        c.is_notify = true;
        assert!(lint_source("use std::sync::Condvar;\n", &c).is_empty());
    }

    #[test]
    fn l1_ignores_strings_and_comments() {
        let src = "// Condvar in prose\nlet s = \"Condvar\";\n";
        assert!(lint_source(src, &ctx("a.rs")).is_empty());
    }

    #[test]
    fn l2_flags_sleep_only_outside_tests() {
        let src = "fn f() { std::thread::sleep(d); }\n\
                   #[cfg(test)]\nmod tests {\n fn g() { std::thread::sleep(d); }\n}\n";
        let d = lint_source(src, &ctx("a.rs"));
        assert_eq!(rules_of(&d), vec!["l2-sleep"]);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn l2_cfg_not_test_still_flagged() {
        let src = "#[cfg(not(test))]\nfn f() { thread::sleep(d); }\n";
        assert_eq!(rules_of(&lint_source(src, &ctx("a.rs"))), vec!["l2-sleep"]);
    }

    #[test]
    fn l2_exempt_dirs() {
        let c = FileCtx::from_rel_path("crates/x/tests/t.rs");
        assert!(c.sleep_exempt);
        assert!(lint_source("fn f() { thread::sleep(d); }", &c).is_empty());
    }

    #[test]
    fn l3_requires_adjacent_comment() {
        let bad = "x.load(Ordering::Relaxed);\n";
        assert_eq!(
            rules_of(&lint_source(bad, &ctx("a.rs"))),
            vec!["l3-relaxed"]
        );
        let same_line = "x.load(Ordering::Relaxed); // relaxed: counter\n";
        assert!(lint_source(same_line, &ctx("a.rs")).is_empty());
        let above = "// relaxed: counter\nx.load(Ordering::Relaxed);\n";
        assert!(lint_source(above, &ctx("a.rs")).is_empty());
    }

    #[test]
    fn l3_comment_covers_contiguous_run() {
        let src = "// relaxed: counters\n\
                   a.load(Ordering::Relaxed);\n\
                   b.load(Ordering::Relaxed);\n\
                   c.load(Ordering::Relaxed);\n";
        assert!(lint_source(src, &ctx("a.rs")).is_empty());
        let gap = "// relaxed: counters\n\
                   a.load(Ordering::Relaxed);\n\
                   let x = 1;\n\
                   b.load(Ordering::Relaxed);\n";
        let d = lint_source(gap, &ctx("a.rs"));
        assert_eq!(rules_of(&d), vec!["l3-relaxed"]);
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn l3_doc_comment_does_not_justify() {
        let src = "/// relaxed: prose\nx.load(Ordering::Relaxed);\n";
        assert_eq!(
            rules_of(&lint_source(src, &ctx("a.rs"))),
            vec!["l3-relaxed"]
        );
    }

    #[test]
    fn l4_guard_across_publish() {
        let src = "fn f(&mut self) {\n\
                     let mut st = lock_unpoisoned(&self.state);\n\
                     st.x += 1;\n\
                     self.publish(v);\n\
                   }\n";
        let d = lint_source(src, &ctx("a.rs"));
        assert_eq!(rules_of(&d), vec!["l4-guard-across-publish"]);
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn l4_drop_ends_liveness() {
        let src = "fn f(&mut self) {\n\
                     let st = lock_unpoisoned(&self.state);\n\
                     drop(st);\n\
                     self.publish(v);\n\
                   }\n";
        assert!(lint_source(src, &ctx("a.rs")).is_empty());
    }

    #[test]
    fn l4_scope_exit_ends_liveness() {
        let src = "fn f(&mut self) {\n\
                     { let st = self.state.lock().unwrap(); }\n\
                     self.emit(v);\n\
                   }\n";
        assert!(lint_source(src, &ctx("a.rs")).is_empty());
    }

    #[test]
    fn l4_fn_definition_not_a_call() {
        let src = "impl X { fn publish(&mut self) { let g = lock(&m); } }\n";
        assert!(lint_source(src, &ctx("a.rs")).is_empty());
    }

    #[test]
    fn l4_published_at_not_a_boundary() {
        let src = "fn f() { let g = lock(&m); let t = snap.published_at(); }\n";
        assert!(lint_source(src, &ctx("a.rs")).is_empty());
    }

    #[test]
    fn l5_crate_root_needs_forbid() {
        let c = FileCtx::from_rel_path("crates/x/src/lib.rs");
        assert!(c.crate_root);
        let d = lint_source("pub fn f() {}\n", &c);
        assert_eq!(rules_of(&d), vec!["l5-forbid-unsafe"]);
        assert!(lint_source("#![forbid(unsafe_code)]\npub fn f() {}\n", &c).is_empty());
        // Non-roots are not checked.
        assert!(lint_source("pub fn f() {}\n", &ctx("crates/x/src/other.rs")).is_empty());
    }

    #[test]
    fn l6_flags_raw_spawns_outside_tests() {
        let d = lint_source("fn f() { std::thread::spawn(move || {}); }\n", &ctx("a.rs"));
        assert_eq!(rules_of(&d), vec!["l6-no-raw-spawn"]);
        let builder = "fn f() {\n thread::Builder::new()\n  .name(n)\n  .spawn(move || {})\n}\n";
        let d = lint_source(builder, &ctx("a.rs"));
        assert_eq!(rules_of(&d), vec!["l6-no-raw-spawn"]);
        assert_eq!(d[0].line, 4, "diagnostic lands on the .spawn( line");
    }

    #[test]
    fn l6_exempts_tests_definitions_and_task_spawns() {
        let in_test = "#[cfg(test)]\nmod tests {\n fn f() { thread::spawn(move || {}); }\n}\n";
        assert!(lint_source(in_test, &ctx("a.rs")).is_empty());
        let test_dir = FileCtx::from_rel_path("crates/x/tests/t.rs");
        assert!(lint_source("fn f() { thread::spawn(move || {}); }", &test_dir).is_empty());
        // A definition and the runtime's own task-spawn API are not raw spawns.
        assert!(lint_source("impl X { fn spawn(&self) {} }\n", &ctx("a.rs")).is_empty());
        assert!(lint_source("fn f() { rt.spawn_task(task, 1); }\n", &ctx("a.rs")).is_empty());
    }

    #[test]
    fn l6_suppression_audits_standing_threads() {
        let src = "fn f() {\n\
                   // lint: allow(l6-no-raw-spawn) -- watchdog needs its own thread\n\
                   thread::spawn(move || {});\n\
                   }\n";
        assert!(lint_source(src, &ctx("a.rs")).is_empty());
    }

    #[test]
    fn suppression_same_line_and_above() {
        let same = "use std::sync::Condvar; // lint: allow(l1-condvar) -- test fixture\n";
        assert!(lint_source(same, &ctx("a.rs")).is_empty());
        let above = "// lint: allow(l1-condvar) -- test fixture\nuse std::sync::Condvar;\n";
        assert!(lint_source(above, &ctx("a.rs")).is_empty());
    }

    #[test]
    fn suppression_requires_reason() {
        let src = "use std::sync::Condvar; // lint: allow(l1-condvar)\n";
        let d = lint_source(src, &ctx("a.rs"));
        assert!(rules_of(&d).contains(&"l1-condvar"));
        assert!(rules_of(&d).contains(&"lint-allow"));
    }

    #[test]
    fn unused_suppression_reported() {
        let src = "// lint: allow(l2-sleep) -- nothing here\nlet x = 1;\n";
        let d = lint_source(src, &ctx("a.rs"));
        assert_eq!(rules_of(&d), vec!["lint-allow"]);
        assert!(d[0].message.contains("matched no violation"));
    }

    #[test]
    fn unknown_rule_reported() {
        let src = "// lint: allow(l9-bogus) -- hm\nlet x = 1;\n";
        let d = lint_source(src, &ctx("a.rs"));
        assert_eq!(rules_of(&d), vec!["lint-allow"]);
        assert!(d[0].message.contains("unknown rule"));
    }

    #[test]
    fn diagnostics_render_path_line_rule() {
        let d = lint_source("use std::sync::Condvar;\n", &ctx("crates/a/src/x.rs"));
        assert_eq!(
            d[0].to_string(),
            "crates/a/src/x.rs:1: [l1-condvar] `Condvar` outside notify.rs: raw condvar waits \
             risk lost wakeups; block through the epoch WaitSet protocol instead"
        );
    }
}
