//! A hand-rolled Rust lexer, in the same offline zero-dependency style as
//! `anytime-bench`'s JSON/Prometheus parsers (`traceview.rs`).
//!
//! The lint rules only need a token stream that is *reliable about what is
//! code and what is not*: identifiers, punctuation, and delimiters, with
//! string/char/number literals collapsed to opaque [`Tok::Literal`] tokens
//! and comments lifted out into a side table. Everything the rules match
//! (`Condvar`, `thread::sleep`, `Ordering::Relaxed`, `lock(`, `publish(`)
//! is an identifier/punct sequence, so a full Rust grammar is unnecessary —
//! but string literals, raw strings, char-vs-lifetime disambiguation, and
//! nested block comments must be lexed exactly or the rules would fire on
//! prose.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`let`, `fn`, `Condvar`, …).
    Ident(String),
    /// A lifetime (`'a`, `'static`). Never a char literal.
    Lifetime,
    /// Any literal: string, raw string, byte string, char, or number.
    Literal,
    /// A single punctuation byte (`.`, `:`, `;`, `#`, `=`, …).
    Punct(u8),
    /// An opening delimiter: `(`, `[`, or `{`.
    Open(u8),
    /// A closing delimiter: `)`, `]`, or `}`.
    Close(u8),
}

/// A token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Tok,
    pub line: u32,
}

/// A comment with its 1-based starting line.
///
/// `doc` distinguishes `///` and `//!` (and their block forms) from plain
/// comments: lint directives and `relaxed:` justifications are only honored
/// in plain comments, so prose in rustdoc cannot accidentally suppress a
/// rule.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
    pub doc: bool,
}

/// The output of [`lex`]: code tokens plus the comment side table.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lexes Rust source. Invalid source never panics: unknown bytes become
/// [`Tok::Punct`] and unterminated literals run to end of input.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = &src[start..i];
                let doc = text.starts_with("///") || text.starts_with("//!");
                out.comments.push(Comment {
                    line,
                    text: text.to_string(),
                    doc,
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                let doc = text.starts_with("/**") || text.starts_with("/*!");
                out.comments.push(Comment {
                    line: start_line,
                    text: text.to_string(),
                    doc,
                });
            }
            b'"' => {
                lex_string(b, &mut i, &mut line);
                out.tokens.push(Token {
                    kind: Tok::Literal,
                    line,
                });
            }
            b'r' | b'b' if is_raw_or_byte_string(b, i) => {
                let start_line = line;
                lex_raw_or_byte_string(b, &mut i, &mut line);
                out.tokens.push(Token {
                    kind: Tok::Literal,
                    line: start_line,
                });
            }
            b'\'' => {
                // Disambiguate char literal from lifetime: `'x'` and `'\n'`
                // are chars; `'a`, `'static`, `'_` are lifetimes.
                if b.get(i + 1) == Some(&b'\\') {
                    // Escaped char literal.
                    i += 2; // consume `'` and `\`
                    while i < b.len() && b[i] != b'\'' {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i = (i + 1).min(b.len());
                    out.tokens.push(Token {
                        kind: Tok::Literal,
                        line,
                    });
                } else if is_ident_byte(b.get(i + 1).copied().unwrap_or(0))
                    && b.get(i + 2) != Some(&b'\'')
                {
                    // Lifetime: consume `'ident`.
                    i += 2;
                    while i < b.len() && is_ident_byte(b[i]) {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: Tok::Lifetime,
                        line,
                    });
                } else {
                    // Plain char literal `'x'` (or a stray quote).
                    i += 1;
                    while i < b.len() && b[i] != b'\'' {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i = (i + 1).min(b.len());
                    out.tokens.push(Token {
                        kind: Tok::Literal,
                        line,
                    });
                }
            }
            _ if c.is_ascii_digit() => {
                // Number literal; a dot is part of it only when followed by
                // a digit, so `0..n` stays three tokens.
                i += 1;
                while i < b.len() {
                    if is_ident_byte(b[i]) {
                        i += 1;
                    } else if b[i] == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                        i += 2;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: Tok::Literal,
                    line,
                });
            }
            _ if is_ident_start(c) => {
                let start = i;
                i += 1;
                while i < b.len() && is_ident_byte(b[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: Tok::Ident(src[start..i].to_string()),
                    line,
                });
            }
            b'(' | b'[' | b'{' => {
                out.tokens.push(Token {
                    kind: Tok::Open(c),
                    line,
                });
                i += 1;
            }
            b')' | b']' | b'}' => {
                out.tokens.push(Token {
                    kind: Tok::Close(c),
                    line,
                });
                i += 1;
            }
            _ => {
                out.tokens.push(Token {
                    kind: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic()
}

fn is_ident_byte(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// `true` when position `i` (at `r` or `b`) starts a raw string `r"`/`r#"`,
/// a byte string `b"`, or their combinations `br"`, `rb` is not valid Rust
/// but `br#"` is. A raw *identifier* `r#ident` is not a string.
fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let rest = &b[i..];
    match rest.first() {
        Some(b'b') => match rest.get(1) {
            Some(b'"') => true,
            Some(b'r') => {
                // br"..." or br#"..."#
                let mut j = 2;
                while rest.get(j) == Some(&b'#') {
                    j += 1;
                }
                rest.get(j) == Some(&b'"')
            }
            _ => false,
        },
        Some(b'r') => {
            let mut j = 1;
            while rest.get(j) == Some(&b'#') {
                j += 1;
            }
            // `r#ident` has an identifier byte after the hashes, not a quote.
            j > 1 && rest.get(j) == Some(&b'"') || j == 1 && rest.get(1) == Some(&b'"')
        }
        _ => false,
    }
}

/// Consumes a plain (escaped) string literal starting at `"`.
fn lex_string(b: &[u8], i: &mut usize, line: &mut u32) {
    *i += 1; // opening quote
    while *i < b.len() {
        match b[*i] {
            b'\\' => *i += 2,
            b'"' => {
                *i += 1;
                return;
            }
            b'\n' => {
                *line += 1;
                *i += 1;
            }
            _ => *i += 1,
        }
    }
}

/// Consumes a raw/byte string starting at `r`/`b`.
fn lex_raw_or_byte_string(b: &[u8], i: &mut usize, line: &mut u32) {
    // Skip the `b` / `r` / `br` prefix.
    while *i < b.len() && (b[*i] == b'b' || b[*i] == b'r') {
        *i += 1;
    }
    let mut hashes = 0usize;
    while *i < b.len() && b[*i] == b'#' {
        hashes += 1;
        *i += 1;
    }
    if b.get(*i) != Some(&b'"') {
        return; // not actually a string; already consumed prefix as best effort
    }
    *i += 1;
    if hashes == 0 {
        // b"..." or r"..." — raw strings have no escapes; byte strings do.
        // Treating both as escape-free is safe for `b"..."` only when no
        // `\"` appears; handle escapes for the byte-string case.
        while *i < b.len() {
            match b[*i] {
                b'\\' => *i += 2,
                b'"' => {
                    *i += 1;
                    return;
                }
                b'\n' => {
                    *line += 1;
                    *i += 1;
                }
                _ => *i += 1,
            }
        }
    } else {
        // r#"..."# with `hashes` closing hashes required.
        while *i < b.len() {
            if b[*i] == b'\n' {
                *line += 1;
                *i += 1;
            } else if b[*i] == b'"' {
                let mut j = *i + 1;
                let mut seen = 0usize;
                while seen < hashes && b.get(j) == Some(&b'#') {
                    seen += 1;
                    j += 1;
                }
                if seen == hashes {
                    *i = j;
                    return;
                }
                *i += 1;
            } else {
                *i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let l = lex("let x = a.b(c);");
        assert_eq!(idents("let x = a.b(c);"), vec!["let", "x", "a", "b", "c"]);
        assert!(l.tokens.iter().any(|t| t.kind == Tok::Punct(b';')));
    }

    #[test]
    fn strings_are_opaque() {
        // `Condvar` inside a string must not surface as an identifier.
        assert!(idents(r#"let s = "Condvar::wait { }";"#)
            .iter()
            .all(|i| i != "Condvar"));
    }

    #[test]
    fn raw_strings_are_opaque() {
        let src = "let s = r#\"thread::sleep \" quote \"#; let t = 1;";
        assert_eq!(idents(src), vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn char_vs_lifetime() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\n'; }");
        let lifetimes = l.tokens.iter().filter(|t| t.kind == Tok::Lifetime).count();
        assert_eq!(lifetimes, 2);
        let literals = l.tokens.iter().filter(|t| t.kind == Tok::Literal).count();
        assert_eq!(literals, 2);
    }

    #[test]
    fn comments_lifted_with_doc_flag() {
        let src = "/// doc\n// plain relaxed: ok\nfn f() {}\n/* block */";
        let l = lex(src);
        assert_eq!(l.comments.len(), 3);
        assert!(l.comments[0].doc);
        assert!(!l.comments[1].doc);
        assert_eq!(l.comments[1].line, 2);
        assert!(!l.comments[2].doc);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn f() {}";
        let l = lex(src);
        assert_eq!(l.comments.len(), 1);
        assert_eq!(idents(src), vec!["fn", "f"]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn number_with_range_stays_separate() {
        let l = lex("for i in 0..10u64 {}");
        // `0`, `.`, `.`, `10u64`
        let dots = l
            .tokens
            .iter()
            .filter(|t| t.kind == Tok::Punct(b'.'))
            .count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn raw_ident_is_ident_not_string() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "r", "type"]);
    }
}
