//! The cross-file workspace model: phase two of the analyzer.
//!
//! Consumes every file's [`FileAst`](crate::ast::FileAst) and builds the
//! three structures the semantic rules need:
//!
//! - a **name-resolved call graph** with task-context reachability: roots
//!   are `fn poll` bodies of `impl RtTask for …` / `impl StageRunner for …`
//!   blocks, and reachability spreads through call expressions resolved to
//!   every same-named workspace function (an over-approximation; see
//!   DESIGN.md §16 for the false-positive/negative shapes this buys);
//! - a **lock-acquisition-order graph**: a directed edge `A → B` for every
//!   site that acquires lock `B` while a named guard of lock `A` is live —
//!   either directly or by calling a function whose *transitive* acquire
//!   set contains `B`;
//! - an **atomic pairing table**: per field name, which orderings ever
//!   read and write it anywhere in the workspace.
//!
//! Test code (`#[cfg(test)]` regions, `tests/`/`benches/`/`examples/`
//! trees) does not contribute call-graph nodes or lock edges, but its
//! atomic accesses still satisfy pairing.

use crate::ast::{AtomicAccess, Event, FileAst};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// A function node in the workspace model.
#[derive(Debug)]
pub struct FnNode {
    /// Workspace-relative path of the defining file.
    pub file: String,
    pub name: String,
    pub line: u32,
    pub trait_name: Option<String>,
    pub type_name: Option<String>,
    pub in_test: bool,
    pub events: Vec<Event>,
}

impl FnNode {
    /// `Type::name` when the impl type is known, else the bare name.
    pub fn qualified(&self) -> String {
        match &self.type_name {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One lock-order edge: `to` acquired while a guard of `from` is live.
#[derive(Debug)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub line: u32,
}

/// One atomic access site, with its defining file for diagnostics.
#[derive(Debug)]
pub struct AtomicSite {
    pub access: AtomicAccess,
    pub file: String,
}

/// The assembled workspace model.
#[derive(Debug)]
pub struct Model {
    pub fns: Vec<FnNode>,
    /// Call-resolution index over non-test functions.
    pub by_name: HashMap<String, Vec<usize>>,
    /// Task-reachable functions → BFS parent (None for roots).
    pub reachable: HashMap<usize, Option<usize>>,
    /// Functions that (transitively) reach a publish/yield boundary call.
    pub yields: HashSet<usize>,
    /// Transitive lock-acquire set per function (index-aligned to `fns`).
    pub trans_locks: Vec<BTreeSet<String>>,
    pub lock_edges: Vec<LockEdge>,
    pub atomics: Vec<AtomicSite>,
}

/// Lock wrapper helpers whose own bodies are the locking primitive; their
/// internal `m.lock()` is not an acquisition of a nameable field.
fn is_lock_helper(name: &str) -> bool {
    name == "lock" || name == "lock_unpoisoned"
}

/// Call names that park the calling OS thread (the L10 set). These are
/// flagged at their call sites and never resolved into — the blocking
/// primitives' own bodies (`WaitSet::wait`, `Receiver::recv`) are not
/// task code.
pub(crate) fn is_blocking_name(name: &str) -> bool {
    matches!(
        name,
        "wait"
            | "wait_deadline"
            | "wait_timeout"
            | "wait_newer"
            | "wait_newer_timeout"
            | "wait_final"
            | "wait_final_timeout"
            | "recv"
            | "recv_timeout"
            | "recv_deadline"
            | "park"
            | "park_timeout"
    )
}

/// Names excluded from cross-file call resolution because they collide
/// with ubiquitous `std` methods: resolving `v.push(x)` to every
/// workspace `fn push` would wire the call graph into noise. The cost is
/// a documented false-negative shape (DESIGN.md §16): a semantic link
/// through one of these names is invisible to L7/L8/L10 reachability.
fn is_unresolvable(name: &str) -> bool {
    matches!(
        name,
        "new"
            | "default"
            | "clone"
            | "push"
            | "pop"
            | "insert"
            | "remove"
            | "get"
            | "get_mut"
            | "len"
            | "is_empty"
            | "iter"
            | "iter_mut"
            | "drain"
            | "next"
            | "map"
            | "filter"
            | "fold"
            | "collect"
            | "extend"
            | "contains"
            | "contains_key"
            | "take"
            | "replace"
            | "swap"
            | "reserve"
            | "clear"
            | "retain"
            | "entry"
            | "keys"
            | "values"
            | "min"
            | "max"
            | "first"
            | "last"
            | "split_off"
            | "resize"
            | "fmt"
            | "eq"
            | "cmp"
            | "hash"
            | "from"
            | "into"
            | "to_string"
            | "to_vec"
            | "as_ref"
            | "as_mut"
            | "unwrap"
            | "expect"
            | "ok"
            | "err"
            | "spawn"
            | "join"
    ) || is_blocking_name(name)
}

impl Model {
    /// Builds the model over every file of a lint run.
    pub fn build(files: &[FileAst]) -> Model {
        let mut fns: Vec<FnNode> = Vec::new();
        let mut atomics: Vec<AtomicSite> = Vec::new();
        for fa in files {
            for f in &fa.fns {
                for ev in &f.events {
                    if let Event::Atomic(a) = ev {
                        let mut a = a.clone();
                        a.in_test |= f.in_test;
                        atomics.push(AtomicSite {
                            access: a,
                            file: fa.display.clone(),
                        });
                    }
                }
                fns.push(FnNode {
                    file: fa.display.clone(),
                    name: f.name.clone(),
                    line: f.line,
                    trait_name: f.trait_name.clone(),
                    type_name: f.type_name.clone(),
                    in_test: f.in_test,
                    events: f.events.clone(),
                });
            }
        }

        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (idx, f) in fns.iter().enumerate() {
            if !f.in_test && !is_unresolvable(&f.name) {
                by_name.entry(f.name.clone()).or_default().push(idx);
            }
        }

        // Task-context reachability from RtTask / StageRunner poll bodies.
        let mut reachable: HashMap<usize, Option<usize>> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for (idx, f) in fns.iter().enumerate() {
            let rooted = f.name == "poll"
                && !f.in_test
                && matches!(f.trait_name.as_deref(), Some("RtTask" | "StageRunner"));
            if rooted {
                reachable.insert(idx, None);
                queue.push_back(idx);
            }
        }
        while let Some(idx) = queue.pop_front() {
            for ev in &fns[idx].events {
                if let Event::Call { name, .. } = ev {
                    for &callee in by_name.get(name).into_iter().flatten() {
                        reachable.entry(callee).or_insert_with(|| {
                            queue.push_back(callee);
                            Some(idx)
                        });
                    }
                }
            }
        }

        // Yield/publish set: seeded by direct boundary calls, propagated to
        // callers until fixpoint.
        let mut yields: HashSet<usize> = HashSet::new();
        for (idx, f) in fns.iter().enumerate() {
            let direct = f.events.iter().any(
                |ev| matches!(ev, Event::Call { name, .. } if crate::is_boundary_call(name)),
            );
            if direct {
                yields.insert(idx);
            }
        }
        loop {
            let mut changed = false;
            for (idx, f) in fns.iter().enumerate() {
                if yields.contains(&idx) {
                    continue;
                }
                let hits = f.events.iter().any(|ev| {
                    matches!(ev, Event::Call { name, .. }
                        if by_name.get(name).into_iter().flatten().any(|c| yields.contains(c)))
                });
                if hits {
                    yields.insert(idx);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Transitive lock-acquire sets (direct acquires ∪ callees').
        let mut trans_locks: Vec<BTreeSet<String>> = fns
            .iter()
            .map(|f| {
                let mut set = BTreeSet::new();
                if !is_lock_helper(&f.name) {
                    for ev in &f.events {
                        if let Event::Acquire { lock, .. } = ev {
                            set.insert(lock.clone());
                        }
                    }
                }
                set
            })
            .collect();
        loop {
            let mut changed = false;
            for idx in 0..fns.len() {
                let mut add: Vec<String> = Vec::new();
                for ev in &fns[idx].events {
                    if let Event::Call { name, .. } = ev {
                        for &callee in by_name.get(name).into_iter().flatten() {
                            for l in &trans_locks[callee] {
                                if !trans_locks[idx].contains(l) {
                                    add.push(l.clone());
                                }
                            }
                        }
                    }
                }
                if !add.is_empty() {
                    trans_locks[idx].extend(add);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Lock-order edges: replay each non-test body's guard scopes.
        let mut lock_edges: Vec<LockEdge> = Vec::new();
        for (idx, f) in fns.iter().enumerate() {
            if f.in_test || is_lock_helper(&f.name) {
                continue;
            }
            replay_guards(&f.events, |held, ev| match ev {
                Event::Acquire { lock, line } => {
                    for g in held {
                        if let Some(from) = &g.lock {
                            if from != lock {
                                lock_edges.push(LockEdge {
                                    from: from.clone(),
                                    to: lock.clone(),
                                    file: f.file.clone(),
                                    line: *line,
                                });
                            }
                        }
                    }
                }
                Event::Call { name, line, .. } => {
                    let mut targets: BTreeSet<&String> = BTreeSet::new();
                    for &callee in by_name.get(name).into_iter().flatten() {
                        if callee != idx {
                            targets.extend(trans_locks[callee].iter());
                        }
                    }
                    for g in held {
                        if let Some(from) = &g.lock {
                            for to in &targets {
                                if from != *to {
                                    lock_edges.push(LockEdge {
                                        from: from.clone(),
                                        to: (*to).clone(),
                                        file: f.file.clone(),
                                        line: *line,
                                    });
                                }
                            }
                        }
                    }
                }
                _ => {}
            });
        }

        Model {
            fns,
            by_name,
            reachable,
            yields,
            trans_locks,
            lock_edges,
            atomics,
        }
    }

    /// The task-context call chain leading to `idx`, for diagnostics:
    /// `StageTask::poll -> run -> drain`.
    pub fn chain_to(&self, idx: usize) -> String {
        let mut names: Vec<String> = Vec::new();
        let mut cur = Some(idx);
        while let Some(i) = cur {
            names.push(self.fns[i].qualified());
            cur = self.reachable.get(&i).copied().flatten();
            if names.len() > 32 {
                break; // defensive: the parent map is acyclic by construction
            }
        }
        names.reverse();
        names.join(" -> ")
    }
}

/// A guard live during event replay.
#[derive(Debug)]
pub struct LiveGuard {
    pub name: String,
    pub lock: Option<String>,
    pub line: u32,
}

/// Replays a body's event stream with L4-style guard scope tracking,
/// invoking `f(held_guards, event)` for every event. The guards slice is
/// innermost-last; `GuardBind` events appear in `held` only *after* their
/// own callback (their `Acquire` precedes the bind in the stream).
pub fn replay_guards<F: FnMut(&[LiveGuard], &Event)>(events: &[Event], mut f: F) {
    let mut frames: Vec<Vec<LiveGuard>> = vec![Vec::new()];
    let mut held: Vec<LiveGuard> = Vec::new();
    for ev in events {
        {
            held.clear();
            for frame in &frames {
                for g in frame {
                    held.push(LiveGuard {
                        name: g.name.clone(),
                        lock: g.lock.clone(),
                        line: g.line,
                    });
                }
            }
            f(&held, ev);
        }
        match ev {
            Event::Open => frames.push(Vec::new()),
            Event::Close => {
                if frames.len() > 1 {
                    frames.pop();
                }
            }
            Event::GuardBind { name, lock, line } => {
                if let Some(frame) = frames.last_mut() {
                    frame.retain(|g| g.name != *name);
                    frame.push(LiveGuard {
                        name: name.clone(),
                        lock: lock.clone(),
                        line: *line,
                    });
                }
            }
            Event::GuardDrop { name } => {
                for frame in frames.iter_mut().rev() {
                    if let Some(pos) = frame.iter().position(|g| g.name == *name) {
                        frame.remove(pos);
                        break;
                    }
                }
            }
            _ => {}
        }
    }
}

/// Finds, for each lexicographically-minimal node, the shortest cycle
/// through it in the lock graph, returned as node sequences
/// `[a, b, …, a]` with the edge sites annotating each hop.
pub fn lock_cycles(edges: &[LockEdge]) -> Vec<Vec<(String, String, u32)>> {
    // adjacency: from → {to → first (file, line) site}
    let mut adj: BTreeMap<&str, BTreeMap<&str, (&str, u32)>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from)
            .or_default()
            .entry(&e.to)
            .or_insert((&e.file, e.line));
    }
    let mut cycles = Vec::new();
    for (&start, _) in &adj {
        // BFS back to `start` using only nodes ≥ start, so each cycle is
        // reported exactly once (at its minimal node).
        let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
        let mut q: VecDeque<&str> = VecDeque::new();
        for (&to, _) in adj.get(start).into_iter().flatten() {
            if to >= start && !parent.contains_key(to) {
                parent.insert(to, start);
                q.push_back(to);
            }
        }
        let mut found = false;
        while let Some(n) = q.pop_front() {
            if n == start {
                found = true;
                break;
            }
            for (&to, _) in adj.get(n).into_iter().flatten() {
                if to >= start && !parent.contains_key(to) {
                    parent.insert(to, n);
                    q.push_back(to);
                }
            }
        }
        if !found {
            continue;
        }
        // Reconstruct start → … → start.
        let mut rev: Vec<&str> = vec![start];
        let mut cur = *parent.get(start).expect("found via BFS");
        while cur != start {
            rev.push(cur);
            cur = parent.get(cur).copied().expect("BFS parents are complete");
        }
        rev.push(start);
        rev.reverse();
        let hops: Vec<(String, String, u32)> = rev
            .windows(2)
            .map(|w| {
                let (file, line) = adj
                    .get(w[0])
                    .and_then(|m| m.get(w[1]))
                    .copied()
                    .expect("cycle edges exist");
                (w[1].to_string(), file.to_string(), line)
            })
            .collect();
        let mut cycle = vec![(start.to_string(), String::new(), 0)];
        cycle.extend(hops);
        cycles.push(cycle);
    }
    cycles
}
