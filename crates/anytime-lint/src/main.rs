#![forbid(unsafe_code)]

//! CLI for the workspace lint: `cargo run -p anytime-lint -- --workspace`.
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: anytime-lint [--workspace] [--root <dir>] [--format <fmt>] [FILE...]\n\
  --workspace     lint every member crate of the workspace\n\
  --root <dir>    workspace root (default: $CARGO_MANIFEST_DIR/../.. or\n\
                  the nearest ancestor with a [workspace] Cargo.toml)\n\
  --format <fmt>  output format: `human` (default) or `json`\n\
  FILE...         lint specific files (paths relative to the root);\n\
                  the cross-file rules see exactly the given set";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Human;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--root" => match it.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => {
                    eprintln!("--root needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--format" => match it.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!(
                        "--format needs `human` or `json`, got {:?}\n{USAGE}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            other => files.push(other.to_string()),
        }
    }
    if !workspace && files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!("could not locate the workspace root; pass --root");
            return ExitCode::from(2);
        }
    };

    let result = if workspace {
        anytime_lint::lint_workspace(&root)
    } else {
        let rels: Vec<String> = files
            .iter()
            .map(|f| {
                Path::new(f)
                    .strip_prefix(&root)
                    .map(|p| p.to_string_lossy().replace('\\', "/"))
                    .unwrap_or_else(|_| f.replace('\\', "/"))
            })
            .collect();
        anytime_lint::lint_paths(&root, &rels)
    };

    match result {
        Ok((diags, scanned)) => {
            match format {
                Format::Human => {
                    for d in &diags {
                        println!("{d}");
                    }
                    if diags.is_empty() {
                        eprintln!("anytime-lint: clean ({scanned} files)");
                    } else {
                        eprintln!(
                            "anytime-lint: {} violation(s) in {scanned} scanned file(s)",
                            diags.len()
                        );
                    }
                }
                Format::Json => println!("{}", anytime_lint::render_json(&diags, scanned)),
            }
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("anytime-lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// Locates the workspace root: the lint crate's own manifest dir is
/// `<root>/crates/anytime-lint` when run via cargo; otherwise walk up from
/// the current directory to the first `Cargo.toml` containing
/// `[workspace]`.
fn find_root() -> Option<PathBuf> {
    if let Some(manifest) = std::env::var_os("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(root) = p.parent().and_then(Path::parent) {
            if is_workspace_root(root) {
                return Some(root.to_path_buf());
            }
        }
    }
    let mut cur = std::env::current_dir().ok()?;
    loop {
        if is_workspace_root(&cur) {
            return Some(cur);
        }
        if !cur.pop() {
            return None;
        }
    }
}

fn is_workspace_root(dir: &Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml"))
        .map(|s| s.contains("[workspace]"))
        .unwrap_or(false)
}
