//! Fixture: a `MutexGuard` held across a publish boundary.

use std::sync::Mutex;

struct Buffer {
    state: Mutex<u64>,
}

impl Buffer {
    fn publish(&self, v: u64) {
        let _ = v;
    }

    fn held_across_publish(&self, v: u64) {
        let st = self.state.lock().unwrap();
        self.publish(*st + v);
    }

    fn dropped_before_publish(&self, v: u64) {
        let st = self.state.lock().unwrap();
        let next = *st + v;
        drop(st);
        self.publish(next);
    }
}
