//! Fixture: raw `Condvar` use outside notify.rs.

use std::sync::{Condvar, Mutex};

struct Rendezvous {
    state: Mutex<bool>,
    cv: Condvar,
}

// lint: allow(l1-condvar) -- fixture: a justified suppression covers the next line
fn suppressed() -> Condvar { Condvar::new() }
