//! Fixture: two functions acquire the same pair of mutexes in opposing
//! orders (L8). The diagnostic must print the full witness cycle with a
//! file:line per edge.

struct Shared {
    alpha: Mutex<Vec<u64>>,
    beta: Mutex<Vec<u64>>,
}

fn drain(s: &Shared) {
    let a = lock(&s.alpha);
    let b = lock(&s.beta);
    b.extend(a.iter().copied());
}

fn refill(s: &Shared) {
    let b = lock(&s.beta);
    let a = lock(&s.alpha);
    a.extend(b.iter().copied());
}
