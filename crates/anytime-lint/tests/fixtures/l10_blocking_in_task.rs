//! Fixture: thread-parking calls buried one level below a task poll body
//! (L10). Both a `WaitSet`-style `recv` and a zero-argument `join()` must
//! be flagged, with the call chain from the poll root in the message.

struct Ingest {
    rx: Receiver<u64>,
    handle: JoinHandle<()>,
}

impl RtTask for Ingest {
    fn poll(&mut self, cx: &mut TaskContext<'_>) -> TaskPoll {
        self.pump_once();
        TaskPoll::Ready(())
    }
}

impl Ingest {
    fn pump_once(&mut self) {
        let item = self.rx.recv();
        let _ = self.handle.join();
        consume(item);
    }
}
