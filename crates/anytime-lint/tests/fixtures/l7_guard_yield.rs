//! Fixture: a task poll body holds a lock guard across a call chain that
//! reaches a publish point (L7), alongside a true negative (guard dropped
//! before the call) and a suppressed-with-reason case.

struct Pump {
    state: Mutex<u64>,
    out: Writer,
}

impl RtTask for Pump {
    fn poll(&mut self, cx: &mut TaskContext<'_>) -> TaskPoll {
        let g = lock(&self.state);
        self.forward(*g);
        drop(g);
        self.ok_path();
        self.audited();
        TaskPoll::Ready(())
    }
}

impl Pump {
    /// Reaches a publish point: callers must not hold guards across this.
    fn forward(&mut self, v: u64) {
        self.out.publish(v);
    }

    /// True negative: the guard dies before the publishing call.
    fn ok_path(&mut self) {
        let g = lock(&self.state);
        let v = *g;
        drop(g);
        self.forward(v);
    }

    /// Suppressed: the reason records why the overlap is tolerable here.
    fn audited(&mut self) {
        let g = lock(&self.state);
        // lint: allow(l7-guard-across-yield) -- fixture: demonstrates an audited overlap
        self.forward(*g);
        drop(g);
    }
}
