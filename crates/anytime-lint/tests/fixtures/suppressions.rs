//! Fixture: suppression hygiene — used, unused, unknown, malformed.

use std::sync::atomic::{AtomicU64, Ordering};

fn suppressed(c: &AtomicU64) -> u64 {
    // lint: allow(l3-relaxed) -- fixture: a used, well-formed suppression
    c.load(Ordering::Relaxed)
}

// lint: allow(l3-relaxed) -- matches nothing on its line or the next
fn unused_suppression() {}

// lint: allow(l9-bogus) -- no such rule
fn unknown_rule() {}

// lint: allow(l2-sleep)
fn missing_reason() {}

// lint: forbid(l2-sleep) -- not an allow directive
fn malformed() {}
