//! Fixture: raw thread creation outside the task runtime.

use std::thread;

fn stage_on_a_thread() {
    thread::spawn(move || {});
}

fn builder_chain() {
    std::thread::Builder::new()
        .name("worker".into())
        .spawn(move || {})
        .unwrap();
}

fn audited_standing_thread() {
    // lint: allow(l6-no-raw-spawn) -- fixture: watchdog must outlive a saturated runtime
    thread::spawn(move || {});
}

fn runtime_task_is_fine(rt: &Runtime) {
    rt.spawn_task(task, 1);
}

impl Pool {
    fn spawn(&self) {} // a definition, not a call
}

#[cfg(test)]
mod tests {
    #[test]
    fn helper_threads_are_fine_in_tests() {
        std::thread::spawn(move || {});
    }
}
