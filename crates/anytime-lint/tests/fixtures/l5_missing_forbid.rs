//! Fixture: a crate root with no `#![forbid(unsafe_code)]`.

pub fn noop() {}
