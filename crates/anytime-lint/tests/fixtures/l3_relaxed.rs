//! Fixture: `Ordering::Relaxed` with and without justification.

use std::sync::atomic::{AtomicU64, Ordering};

fn unjustified(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

fn justified(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed); // relaxed: diagnostics counter
}

fn chained_run(a: &AtomicU64, b: &AtomicU64) -> (u64, u64) {
    // relaxed: snapshot reads; skew tolerated
    (a.load(Ordering::Relaxed),
     b.load(Ordering::Relaxed))
}
