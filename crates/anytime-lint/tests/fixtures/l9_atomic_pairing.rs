//! Fixture: release/acquire operations whose other half is missing from
//! the workspace (L9), plus a correctly paired field as the true
//! negative.

struct Flags {
    ready: AtomicU64,
    sealed: AtomicU64,
    epoch: AtomicU64,
}

fn seal(f: &Flags) {
    f.sealed.store(1, Ordering::Release);
}

fn observe(f: &Flags) -> u64 {
    f.epoch.load(Ordering::Acquire)
}

fn paired(f: &Flags) -> u64 {
    f.ready.store(1, Ordering::Release);
    f.ready.load(Ordering::Acquire)
}
