//! Fixture: `thread::sleep` outside test code.

use std::thread;
use std::time::Duration;

fn poll_quantum() {
    thread::sleep(Duration::from_millis(10));
}

fn backoff() {
    // lint: allow(l2-sleep) -- fixture: justified bounded backoff
    std::thread::sleep(Duration::from_millis(1));
}

#[cfg(test)]
mod tests {
    #[test]
    fn sleeps_are_fine_in_tests() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
