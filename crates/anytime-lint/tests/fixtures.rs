//! Golden-diagnostic tests for the lint rules, plus the acceptance check
//! that the live workspace is lint-clean.
//!
//! Each fixture under `tests/fixtures/` is linted as if it lived at a
//! chosen workspace-relative path (the path drives the file context:
//! test-exemption, crate-root detection, the notify.rs carve-out), and
//! its diagnostics are compared line-for-line against the sibling
//! `.expected` file. Regenerate the golden files with
//! `BLESS_LINT_FIXTURES=1 cargo test -p anytime-lint`.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Fixture file → the workspace-relative path it is linted as.
const CASES: &[(&str, &str)] = &[
    ("l1_condvar.rs", "crates/demo/src/worker.rs"),
    ("l2_sleep.rs", "crates/demo/src/worker.rs"),
    ("l3_relaxed.rs", "crates/demo/src/worker.rs"),
    ("l4_guard.rs", "crates/demo/src/worker.rs"),
    ("l5_missing_forbid.rs", "crates/demo/src/lib.rs"),
    ("l6_no_raw_spawn.rs", "crates/demo/src/worker.rs"),
    ("l7_guard_yield.rs", "crates/demo/src/worker.rs"),
    ("l8_lock_order.rs", "crates/demo/src/worker.rs"),
    ("l9_atomic_pairing.rs", "crates/demo/src/worker.rs"),
    ("l10_blocking_in_task.rs", "crates/demo/src/worker.rs"),
    ("suppressions.rs", "crates/demo/src/worker.rs"),
];

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn rendered_diagnostics(fixture: &str, rel: &str) -> String {
    let path = fixtures_dir().join(fixture);
    let diags =
        anytime_lint::lint_file(&path, rel).unwrap_or_else(|e| panic!("linting {fixture}: {e}"));
    let mut out = String::new();
    for d in &diags {
        writeln!(out, "{d}").unwrap();
    }
    out
}

#[test]
fn fixtures_match_golden_diagnostics() {
    let bless = std::env::var_os("BLESS_LINT_FIXTURES").is_some();
    for (fixture, rel) in CASES {
        let got = rendered_diagnostics(fixture, rel);
        let expected_path =
            fixtures_dir().join(format!("{}.expected", fixture.trim_end_matches(".rs")));
        if bless {
            std::fs::write(&expected_path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&expected_path)
            .unwrap_or_else(|e| panic!("{}: {e}", expected_path.display()));
        assert_eq!(
            got, want,
            "golden mismatch for {fixture} \
             (run with BLESS_LINT_FIXTURES=1 to regenerate)"
        );
    }
}

#[test]
fn every_rule_fires_on_some_fixture() {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for (fixture, rel) in CASES {
        for line in rendered_diagnostics(fixture, rel).lines() {
            if let Some(open) = line.find('[') {
                if let Some(close) = line[open..].find(']') {
                    seen.insert(line[open + 1..open + close].to_string());
                }
            }
        }
    }
    for rule in anytime_lint::RULES {
        assert!(seen.contains(rule), "no fixture exercises `{rule}`");
    }
    assert!(
        seen.contains("lint-allow"),
        "no fixture exercises suppression hygiene"
    );
}

/// The `--format json` output is golden-tested against the L8 fixture
/// (witness-cycle messages exercise the string escaper) and checked for
/// shape on a clean result.
#[test]
fn json_format_matches_golden() {
    let bless = std::env::var_os("BLESS_LINT_FIXTURES").is_some();
    let path = fixtures_dir().join("l8_lock_order.rs");
    let diags = anytime_lint::lint_file(&path, "crates/demo/src/worker.rs").unwrap();
    let got = anytime_lint::render_json(&diags, 1);
    let expected_path = fixtures_dir().join("l8_lock_order.json.expected");
    if bless {
        std::fs::write(&expected_path, &got).unwrap();
    } else {
        let want = std::fs::read_to_string(&expected_path)
            .unwrap_or_else(|e| panic!("{}: {e}", expected_path.display()));
        assert_eq!(
            got, want,
            "JSON golden mismatch (run with BLESS_LINT_FIXTURES=1 to regenerate)"
        );
    }
    assert_eq!(
        anytime_lint::render_json(&[], 3),
        "{\n  \"scanned\": 3,\n  \"violations\": 0,\n  \"diagnostics\": []\n}"
    );
}

/// The acceptance criterion: the tree this crate ships in is lint-clean
/// under the full catalog — including suppression hygiene, so every
/// `// lint: allow(…)` in the workspace is well-formed, reasoned, and
/// still matches a violation.
#[test]
fn live_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate lives at <root>/crates/anytime-lint");
    let (diags, scanned) = anytime_lint::lint_workspace(root).expect("workspace scan");
    assert!(scanned > 50, "suspiciously small scan: {scanned} files");
    let stale: Vec<String> = diags
        .iter()
        .filter(|d| d.rule == "lint-allow")
        .map(ToString::to_string)
        .collect();
    assert!(
        stale.is_empty(),
        "stale or malformed suppressions:\n{}",
        stale.join("\n")
    );
    let rendered: Vec<String> = diags.iter().map(ToString::to_string).collect();
    assert!(
        diags.is_empty(),
        "workspace is not lint-clean:\n{}",
        rendered.join("\n")
    );
}
