//! # anytime — The Anytime Automaton, in Rust
//!
//! A from-scratch reproduction of *"The Anytime Automaton"* (Joshua San
//! Miguel and Natalie Enright Jerger, ISCA 2016): approximate applications
//! executed as parallel pipelines of anytime computation stages, so that
//! whole-application output accuracy increases monotonically over time,
//! execution can be stopped at any moment with a valid output in hand, and
//! the precise output is guaranteed if you simply keep running.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! - [`core`] — the computation model: anytime stage bodies, versioned
//!   output buffers, asynchronous/synchronous pipelines, interruptible
//!   execution, scheduling policies.
//! - [`permute`] — bijective sampling permutations (sequential, N-D tree,
//!   LFSR/LCG pseudo-random) and multi-threaded partitioning.
//! - [`approx`] — approximate-computing technique adapters: loop
//!   perforation, fixed-point bit planes, float precision, approximate
//!   storage schedules.
//! - [`img`] — image substrate: containers, PGM/PPM I/O, synthetic inputs,
//!   SNR metrics.
//! - [`sim`] — simulated hardware: drowsy SRAM, low-refresh DRAM, cache +
//!   permutation-aware prefetcher, energy accounting.
//! - [`apps`] — the paper's five evaluation benchmarks (2dconv, histeq,
//!   dwt53, debayer, kmeans) plus the runtime–accuracy profiler.
//!
//! ## Quickstart
//!
//! ```
//! use anytime::apps::Conv2d;
//! use anytime::img::{synth, Kernel};
//! use std::time::Duration;
//!
//! let app = Conv2d::new(synth::value_noise(64, 64, 1), Kernel::box_blur(5));
//! let (pipeline, out) = app.automaton(1024)?;
//! let auto = pipeline.launch()?;
//!
//! // Stop whenever the current output is acceptable…
//! let first = out.wait_newer_timeout(None, Duration::from_secs(30))?;
//! assert!(first.steps() > 0);
//!
//! // …or let it run: the precise output is guaranteed.
//! let precise = out.wait_final_timeout(Duration::from_secs(60))?;
//! assert_eq!(precise.value(), &app.precise());
//! auto.join()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use anytime_approx as approx;
pub use anytime_apps as apps;
pub use anytime_core as core;
pub use anytime_img as img;
pub use anytime_permute as permute;
pub use anytime_sim as sim;
