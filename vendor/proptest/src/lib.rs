//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds in environments with no network access, so the
//! external `proptest` dependency is replaced by this minimal shim. It
//! keeps the same testing discipline — each property runs against many
//! randomly sampled inputs — while implementing only the API surface the
//! workspace uses:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`)
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`]
//! - [`Strategy`] with `prop_map` / `prop_flat_map`
//! - range strategies over the primitive integer and float types,
//!   tuple strategies, [`any`], and `prop::collection::vec`
//!
//! Sampling is deterministic: each `(test name, case index)` pair maps to
//! a fixed RNG seed, so failures reproduce without shrinking support
//! (this shim does not shrink; it reports the failing case index).
//! The number of cases per property honours the `PROPTEST_CASES`
//! environment variable when the default config is used.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Deterministic RNG used to drive sampling.

    /// SplitMix64 RNG seeded from the test name and case index, so every
    /// run of the suite explores the same inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG for one named test case.
        pub fn deterministic(name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next 64 pseudo-random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

use test_runner::TestRng;

/// Per-property configuration; only the case count is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every sampled value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from every sampled value and samples it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Types with a canonical "any value" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: a fixed size or a range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose
    /// lengths come from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (with its inputs' case index) rather than panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Skips the current case when its precondition does not hold.
///
/// Upstream proptest rejects the case and draws a replacement; this shim
/// simply counts the case as passed, which is sound (never hides a
/// failure) at the cost of a little lost coverage on sparse domains.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                ::std::format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}` ({})\n  both: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                ::std::format!($($fmt)+),
                l
            ));
        }
    }};
}

/// Declares property tests: each `fn` is expanded into a `#[test]` that
/// samples its arguments from the given strategies for `cases` rounds.
/// The `#[test]` attribute is written explicitly on each function (as in
/// upstream proptest) and passed through unchanged.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        let __tail: ::std::result::Result<(), ::std::string::String> =
                            ::std::result::Result::Ok(());
                        __tail
                    })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    ::std::panic!(
                        "property `{}` failed at case {}/{}:\n{}",
                        ::std::stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        __msg
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0.25f64..0.75, n in 1usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!((1..=4).contains(&n));
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn maps_compose((a, b) in (0u64..10, 0u64..10).prop_map(|(a, b)| (a * 2, b * 3))) {
            prop_assert_eq!(a % 2, 0);
            prop_assert_eq!(b % 3, 0);
        }

        #[test]
        fn flat_map_derives(v in (1usize..5).prop_flat_map(|n| prop::collection::vec(0u8..2, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("t", 0);
        let mut b = crate::test_runner::TestRng::deterministic("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failure_reports_case() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
