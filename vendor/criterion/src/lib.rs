//! Offline stand-in for the `criterion` crate.
//!
//! This workspace builds in environments with no network access, so the
//! external `criterion` dependency is replaced by this shim. It keeps the
//! same bench-authoring API — `criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, `sample_size` / `measurement_time`
//! chaining, `bench_function`, `Bencher::iter` / `iter_with_setup` — and
//! performs real wall-clock measurement, reporting min/mean/median/max
//! per-iteration times to stdout. It does not produce HTML reports or
//! statistical regression analysis.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of the standard opaque-value barrier; benches may use either
/// `std::hint::black_box` or `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver, one per `criterion_group!` function.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl ToString) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total wall-clock budget for collecting samples.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Measures `f` and prints per-iteration timing statistics.
    pub fn bench_function<F>(&mut self, id: impl ToString, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        report(&self.name, &id.to_string(), &bencher.samples);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is
    /// incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`, spreading the measurement
    /// budget across the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_with_setup(|| (), |()| routine());
    }

    /// Times `routine` with an untimed `setup` before every batch.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up and calibration: estimate the per-iteration cost so each
        // sample batch is sized to fit the measurement budget. The
        // estimate includes setup time — setup is never *measured*, but it
        // spends wall clock, so batch sizing must account for it.
        let calibration = Instant::now();
        let input = setup();
        black_box(routine(input));
        let estimate = calibration.elapsed().max(Duration::from_nanos(1));

        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample = (per_sample.as_nanos() / estimate.as_nanos()).clamp(1, 1_000_000);

        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                elapsed += t.elapsed();
            }
            self.samples.push(elapsed / iters_per_sample as u32);
            // Never exceed ~2x the requested measurement time even if the
            // calibration estimate was far off.
            if budget_start.elapsed() > self.measurement_time * 2 {
                break;
            }
        }
    }
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples collected");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let min = sorted[0];
    let max = *sorted.last().unwrap();
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{group}/{id}: time [min {} .. mean {} .. median {} .. max {}] ({} samples)",
        fmt(min),
        fmt(mean),
        fmt(median),
        fmt(max),
        sorted.len()
    );
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function invoking each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(20));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_function("with_setup", |b| {
            b.iter_with_setup(|| vec![1u64; 16], |v| v.iter().sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_reports() {
        benches();
    }
}
