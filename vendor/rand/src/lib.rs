//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no network access, so the
//! external `rand` dependency is replaced by this minimal, deterministic
//! shim. It implements exactly the API surface the workspace uses:
//!
//! - `rand::rngs::StdRng`
//! - `rand::SeedableRng::seed_from_u64`
//! - `rand::Rng::random_range` over half-open ranges of `f64`, `u64`,
//!   `u32`, and `usize`
//!
//! The generator is SplitMix64 — statistically solid for simulation and
//! test workloads, sequential, and fully reproducible from a `u64` seed.
//! It is **not** cryptographically secure.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core pseudo-random number generation: a stream of `u64` values.
pub trait RngCore {
    /// Returns the next value in the pseudo-random stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically seeded from a single `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws a value in `[low, high)` using `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        // 53 uniformly distributed mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high - low) as u64;
                debug_assert!(span > 0, "empty sample range");
                low + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u32, u64, usize, i64);

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the half-open range `[start, end)`.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(
            range.start < range.end,
            "random_range called with empty range"
        );
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s
    /// `StdRng`. Same name, same `seed_from_u64` construction path.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0.0f64..1.0), b.random_range(0.0f64..1.0));
        }
    }

    #[test]
    fn f64_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&x));
        }
    }

    #[test]
    fn int_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.random_range(5u64..17);
            assert!((5..17).contains(&x));
        }
    }
}
