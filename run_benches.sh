#!/bin/sh
# Regenerates bench_output.txt by running every Criterion bench target.
cd /root/repo
: > bench_output.txt
for b in model_primitives fig10_organizations fig11_conv2d fig12_histeq \
         fig13_dwt53 fig14_debayer fig15_kmeans fig19_precision fig20_storage \
         ablation_permutations ablation_granularity ablation_scheduling \
         ablation_parallel; do
  echo "=== bench target: $b ===" >> bench_output.txt
  cargo bench -p anytime-bench --bench "$b" >> bench_output.txt 2>&1
done
echo "ALL-BENCHES-DONE" >> bench_output.txt
