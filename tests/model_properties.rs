//! Property-based integration tests of the computation model itself:
//! whatever the stage shapes, granularities, and orders, the automaton
//! must deliver monotone accuracy and the exact precise output.

use anytime::core::{
    Diffusive, Iterative, PipelineBuilder, Precise, SampledMap, SampledReduce, StageOptions,
    StepOutcome,
};
use anytime::permute::{DynPermutation, Lcg, Lfsr, Sequential, Tree1d};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(60);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A sampled reduction reaches the exact sum for any data, any
    /// permutation family, and any publication granularity.
    #[test]
    fn sampled_reduce_always_reaches_exact_sum(
        data in prop::collection::vec(0u64..1000, 1..200),
        granularity in 1u64..50,
        seed in 1u32..1000,
    ) {
        let n = data.len();
        let expected: u64 = data.iter().sum();
        let perm = DynPermutation::new(Lfsr::with_seed(n, seed).unwrap());
        let mut pb = PipelineBuilder::new();
        let out = pb.source(
            "sum",
            data,
            SampledReduce::new(
                perm,
                |_: &Vec<u64>| 0u64,
                |acc, d: &Vec<u64>, idx| *acc += d[idx],
            ),
            StageOptions::with_publish_every(granularity),
        );
        let auto = pb.build().launch().unwrap();
        let snap = out.wait_final_timeout(WAIT).unwrap();
        prop_assert_eq!(*snap.value(), expected);
        prop_assert_eq!(snap.steps(), n as u64);
        auto.join().unwrap();
    }

    /// A sampled map fills every element exactly once regardless of order.
    #[test]
    fn sampled_map_is_exact_for_any_order(
        len_pow in 1u32..8,
        use_tree in any::<bool>(),
        granularity in 1u64..64,
    ) {
        let n = 1usize << len_pow;
        let data: Vec<u64> = (0..n as u64).collect();
        let perm = if use_tree {
            DynPermutation::new(Tree1d::new(n).unwrap())
        } else {
            DynPermutation::new(Lcg::with_len(n).unwrap())
        };
        let mut pb = PipelineBuilder::new();
        let out = pb.source(
            "map",
            data,
            SampledMap::new(
                perm,
                |d: &Vec<u64>| vec![u64::MAX; d.len()],
                |d, out: &mut Vec<u64>, idx| out[idx] = d[idx] * 3 + 1,
            ),
            StageOptions::with_publish_every(granularity),
        );
        let auto = pb.build().launch().unwrap();
        let snap = out.wait_final_timeout(WAIT).unwrap();
        let expected: Vec<u64> = (0..n as u64).map(|v| v * 3 + 1).collect();
        prop_assert_eq!(snap.value(), &expected);
        auto.join().unwrap();
    }

    /// Chains of stages propagate the precise output end to end, whatever
    /// the per-stage step counts and granularities.
    #[test]
    fn chained_counters_compose_precisely(
        stages in 1usize..5,
        steps in 1u64..40,
        granularity in 1u64..16,
    ) {
        let mut pb = PipelineBuilder::new();
        let mut reader = pb.source(
            "stage0",
            (),
            Diffusive::new(
                |_: &()| 0u64,
                move |_: &(), out: &mut u64, step| {
                    *out += 1;
                    if step + 1 == steps { StepOutcome::Done } else { StepOutcome::Continue }
                },
            ),
            StageOptions::with_publish_every(granularity),
        );
        for s in 1..stages {
            reader = pb.stage(
                format!("stage{s}"),
                &reader,
                Precise::new(|v: &u64| v + 1000),
                StageOptions::default(),
            );
        }
        let auto = pb.build().launch().unwrap();
        let snap = reader.wait_final_timeout(WAIT).unwrap();
        prop_assert_eq!(*snap.value(), steps + 1000 * (stages as u64 - 1));
        let report = auto.join().unwrap();
        prop_assert!(report.all_final());
    }

    /// The synchronous pipeline computes the same result as the
    /// asynchronous one for a distributive fold, for any update stream.
    #[test]
    fn sync_equals_async_for_distributive_folds(
        updates in prop::collection::vec(0i64..100, 0..60),
        capacity in 1usize..8,
    ) {
        let expected: i64 = updates.iter().map(|x| x * 2).sum();
        // Synchronous composition.
        let mut pb = PipelineBuilder::new();
        let u2 = updates.clone();
        let stream = pb.sync_source("f", u2, capacity, |u: &Vec<i64>, step| {
            u.get(step as usize).copied()
        });
        let out = pb.sync_stage(
            "g",
            stream,
            || 0i64,
            |acc: &mut i64, x: i64| *acc += x * 2,
            StageOptions::default(),
        );
        let auto = pb.build().launch().unwrap();
        let sync_result = *out.wait_final_timeout(WAIT).unwrap().value();
        auto.join().unwrap();
        // Asynchronous composition: g recomputes on snapshots of F.
        let n = updates.len();
        let mut pb = PipelineBuilder::new();
        let u3 = updates.clone();
        let f = pb.source(
            "f",
            (),
            Diffusive::new(
                |_: &()| (0usize, 0i64),
                move |_: &(), out: &mut (usize, i64), step| {
                    out.0 += 1;
                    out.1 += u3[step as usize];
                    if step as usize + 1 == n { StepOutcome::Done } else { StepOutcome::Continue }
                },
            ),
            StageOptions::default(),
        );
        let g = pb.stage(
            "g",
            &f,
            Precise::new(|f: &(usize, i64)| f.1 * 2),
            StageOptions::default(),
        );
        let (async_result, auto2) = if n == 0 {
            // A zero-step diffusive stage is not a thing: treat as empty.
            (0, None)
        } else {
            let auto2 = pb.build().launch().unwrap();
            let v = *g.wait_final_timeout(WAIT).unwrap().value();
            (v, Some(auto2))
        };
        if let Some(a) = auto2 { a.join().unwrap(); }
        prop_assert_eq!(sync_result, expected);
        if n > 0 {
            prop_assert_eq!(async_result, expected);
        }
    }

    /// Version histories are strictly increasing in version and steps, and
    /// only the last version is final.
    #[test]
    fn history_invariants(steps in 1u64..60, granularity in 1u64..10) {
        let mut pb = PipelineBuilder::new();
        let out = pb.source(
            "ctr",
            (),
            Diffusive::new(
                |_: &()| 0u64,
                move |_: &(), out: &mut u64, step| {
                    *out += 1;
                    if step + 1 == steps { StepOutcome::Done } else { StepOutcome::Continue }
                },
            ),
            StageOptions::with_publish_every(granularity).keep_history(),
        );
        let auto = pb.build().launch().unwrap();
        auto.join().unwrap();
        let hist = out.history().unwrap();
        prop_assert!(!hist.is_empty());
        for w in hist.windows(2) {
            prop_assert!(w[1].version() > w[0].version());
            prop_assert!(w[1].steps() > w[0].steps());
            prop_assert!(!w[0].is_final());
        }
        let last = hist.last().unwrap();
        prop_assert!(last.is_final());
        prop_assert_eq!(last.steps(), steps);
    }

    /// Iterative stages publish exactly one version per level; the last is
    /// final and matches the precise level.
    #[test]
    fn iterative_levels_publish_in_order(levels in 1u64..12) {
        let mut pb = PipelineBuilder::new();
        let out = pb.source(
            "iter",
            7u64,
            Iterative::new(
                levels,
                |_: &u64| 0u64,
                |input: &u64, level| input * (level + 1),
            ),
            StageOptions::default().keep_history(),
        );
        let auto = pb.build().launch().unwrap();
        auto.join().unwrap();
        let hist = out.history().unwrap();
        prop_assert_eq!(hist.len() as u64, levels);
        for (k, snap) in hist.iter().enumerate() {
            prop_assert_eq!(*snap.value(), 7 * (k as u64 + 1));
        }
        prop_assert!(hist.last().unwrap().is_final());
    }

    /// Any permutation drives a map to the identical final output; the
    /// order only affects the intermediate samples.
    #[test]
    fn final_output_is_order_independent(n in 1usize..128, seed in 1u32..500) {
        let data: Vec<u64> = (0..n as u64).map(|v| v * v).collect();
        let run = |perm: DynPermutation| {
            let mut pb = PipelineBuilder::new();
            let out = pb.source(
                "map",
                data.clone(),
                SampledMap::new(
                    perm,
                    |d: &Vec<u64>| vec![0u64; d.len()],
                    |d, out: &mut Vec<u64>, idx| out[idx] = d[idx] + 1,
                ),
                StageOptions::with_publish_every(7),
            );
            let auto = pb.build().launch().unwrap();
            let v = out.wait_final_timeout(WAIT).unwrap().value_arc();
            auto.join().unwrap();
            v
        };
        let sequential = run(DynPermutation::new(Sequential::new(n)));
        let scrambled = run(DynPermutation::new(Lfsr::with_seed(n, seed).unwrap()));
        prop_assert_eq!(&*sequential, &*scrambled);
    }
}

/// Non-proptest: stress the single-writer/multi-reader buffer under a
/// pipeline with aggressive publication.
#[test]
fn rapid_publication_is_linearizable() {
    let mut pb = PipelineBuilder::new();
    let out = pb.source(
        "fast",
        (),
        Diffusive::new(
            |_: &()| vec![0u64; 32],
            |_: &(), out: &mut Vec<u64>, step| {
                let v = step + 1;
                out.fill(v);
                if v == 5000 {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            },
        ),
        StageOptions::with_publish_every(1),
    );
    let pipeline = pb.build();
    let readers: Vec<_> = (0..4).map(|_| out.clone()).collect();
    let auto = pipeline.launch().unwrap();
    let handles: Vec<_> = readers
        .into_iter()
        .map(|r| {
            std::thread::spawn(move || {
                let mut last = 0u64;
                loop {
                    if let Some(snap) = r.latest() {
                        let v = snap.value();
                        assert!(v.iter().all(|&x| x == v[0]), "torn snapshot");
                        assert!(v[0] >= last, "version went backwards");
                        last = v[0];
                        if snap.is_final() {
                            return last;
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), 5000);
    }
    auto.join().unwrap();
    let _ = Arc::strong_count(&out.latest().unwrap().value_arc());
}
