//! Cross-crate integration tests: every evaluation application, run as a
//! whole automaton, must honor the model's three guarantees — early
//! availability, interruptibility, and guaranteed precision.

use anytime::apps::{Conv2d, Debayer, Dwt53, Histeq, Kmeans};
use anytime::img::{metrics, synth, ImageBuf, Kernel};
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

#[test]
fn conv2d_precise_guarantee() {
    let app = Conv2d::new(synth::value_noise(48, 48, 1), Kernel::gaussian(5, 1.2));
    let (pipeline, out) = app.automaton(256).unwrap();
    let auto = pipeline.launch().unwrap();
    let snap = out.wait_final_timeout(WAIT).unwrap();
    assert_eq!(snap.value(), &app.precise());
    assert!(auto.join().unwrap().all_final());
}

#[test]
fn debayer_precise_guarantee() {
    let app = Debayer::from_rgb(&synth::rgb_scene(48, 48, 2));
    let (pipeline, out) = app.automaton(256).unwrap();
    let auto = pipeline.launch().unwrap();
    let snap = out.wait_final_timeout(WAIT).unwrap();
    assert_eq!(snap.value(), &app.precise());
    auto.join().unwrap();
}

#[test]
fn dwt53_round_trip_is_bit_exact() {
    let app = Dwt53::new(synth::value_noise(32, 32, 6));
    let (pipeline, out) = app.automaton().unwrap();
    let auto = pipeline.launch().unwrap();
    let snap = out.wait_final_timeout(WAIT).unwrap();
    // The integer 5/3 transform is reversible: round-trip equals input.
    assert_eq!(Dwt53::reconstruct(snap.value()), *app.image());
    auto.join().unwrap();
}

#[test]
fn histeq_four_stage_pipeline_finalizes() {
    let app = Histeq::new(synth::blobs(32, 32, 3, 9));
    let (pipeline, out) = app.automaton(128, 128).unwrap();
    let auto = pipeline.launch().unwrap();
    let snap = out.wait_final_timeout(WAIT).unwrap();
    assert_eq!(snap.value(), &app.precise());
    let report = auto.join().unwrap();
    assert_eq!(report.stages.len(), 4);
    assert!(report.all_final());
}

#[test]
fn kmeans_two_stage_pipeline_finalizes() {
    let app = Kmeans::new(synth::rgb_scene(32, 32, 5), 5);
    let (pipeline, out) = app.automaton(128).unwrap();
    let auto = pipeline.launch().unwrap();
    let snap = out.wait_final_timeout(WAIT).unwrap();
    assert_eq!(app.compose(snap.value()), app.precise());
    auto.join().unwrap();
}

#[test]
fn interruption_always_leaves_valid_whole_output() {
    // Stop a 2dconv automaton at several points; the latest output must
    // always be a complete image whose filtered pixels match the precise
    // output exactly (sampled pixels are computed precisely).
    let app = Conv2d::new(synth::value_noise(96, 96, 7), Kernel::gaussian(9, 2.0));
    let precise = app.precise();
    for wait_versions in [1usize, 3, 6] {
        let (pipeline, out) = app.automaton(512).unwrap();
        let auto = pipeline.launch().unwrap();
        let mut last = None;
        for _ in 0..wait_versions {
            match out.wait_newer_timeout(last, WAIT) {
                Ok(snap) => last = Some(snap.version()),
                Err(_) => break,
            }
        }
        auto.stop_and_join().unwrap();
        let snap = out.latest().expect("output available");
        let img: &ImageBuf<u8> = snap.value();
        assert_eq!(img.width(), 96);
        assert_eq!(img.height(), 96);
        // Count pixels matching the precise output: must be at least the
        // published sample count (zeros can coincide too).
        let matching = img
            .as_slice()
            .iter()
            .zip(precise.as_slice())
            .filter(|(a, b)| a == b)
            .count() as u64;
        assert!(
            matching >= snap.steps(),
            "only {matching} precise pixels for {} samples",
            snap.steps()
        );
    }
}

#[test]
fn accuracy_improves_across_versions() {
    // Watch the version history of a debayer run: SNR must be
    // non-decreasing version over version (diffusive stage, fixed input).
    use anytime::core::StageOptions;
    use anytime::core::{PipelineBuilder, SampledMap};
    use anytime::permute::{DynPermutation, Tree2d};

    let scene = synth::rgb_scene(64, 64, 13);
    let app = Debayer::from_rgb(&scene);
    let reference = app.precise();
    let mosaic = app.mosaic().clone();
    let perm = DynPermutation::new(Tree2d::new(64, 64).unwrap());
    let mut pb = PipelineBuilder::new();
    let out = pb.source(
        "debayer",
        mosaic,
        SampledMap::new(
            perm,
            |input: &ImageBuf<u8>| ImageBuf::new(input.width(), input.height(), 3).unwrap(),
            |input: &ImageBuf<u8>, out: &mut ImageBuf<u8>, idx| {
                let (x, y) = input.pixel_coords(idx);
                out.set_pixel(x, y, &anytime::apps::debayer::demosaic_at(input, x, y));
            },
        ),
        StageOptions::with_publish_every(512).keep_history(),
    );
    let auto = pb.build().launch().unwrap();
    auto.join().unwrap();
    let history = out.history().unwrap();
    assert!(history.len() >= 8, "expected several versions");
    let mut last = f64::NEG_INFINITY;
    for snap in &history {
        let snr = metrics::snr_db(snap.value(), &reference);
        assert!(snr >= last, "SNR regressed at version {}", snap.version());
        last = snr;
    }
    assert_eq!(last, f64::INFINITY);
}

#[test]
fn pause_freezes_and_resume_continues_to_precise() {
    let app = Conv2d::new(synth::value_noise(64, 64, 3), Kernel::gaussian(7, 1.5));
    let (pipeline, out) = app.automaton(128).unwrap();
    let auto = pipeline.launch().unwrap();
    out.wait_newer_timeout(None, WAIT).unwrap();
    auto.pause();
    std::thread::sleep(Duration::from_millis(20));
    let frozen = out.latest().map(|s| s.version());
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(out.latest().map(|s| s.version()), frozen);
    auto.resume();
    let snap = out.wait_final_timeout(WAIT).unwrap();
    assert_eq!(snap.value(), &app.precise());
    auto.join().unwrap();
}
